#include "core/spanning_forest.hpp"

#include <algorithm>
#include <cmath>

#include "core/expand.hpp"
#include "core/round_arena.hpp"
#include "core/vanilla.hpp"
#include "core/vote.hpp"
#include "util/arena.hpp"
#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

namespace {

constexpr std::uint64_t kInfDist = static_cast<std::uint64_t>(-1);

/// One TREE-LINK (§C.3) given the finished EXPAND and leader flags.
/// Writes parent links into `forest` and marks forest arcs in `in_forest`.
/// Every step is a parallel map over slots or arcs: slot-local Q/α/β state
/// is disjoint, the leader-neighbour marks are idempotent stores, and the
/// link choice resolves by fetch-min on the (arc, side) key — so the forest
/// and the marked arc set are thread-count invariant.
void tree_link(const ExpandEngine& expand,
               const std::vector<std::uint8_t>& leader,
               const std::vector<Arc>& arcs, ParentForest& forest,
               std::vector<std::uint8_t>& in_forest, RunStats& stats) {
  const std::uint32_t num = expand.num_slots();
  const std::uint32_t cap = expand.table_capacity();
  const auto& hv = expand.hv();

  // Step (1): initialise α and Q.
  std::vector<std::int64_t> alpha(num);
  std::vector<std::vector<VertexId>> q(num);
  util::parallel_for(0, num, [&](std::size_t s) {
    if (leader[s] || expand.fully_dormant(static_cast<std::uint32_t>(s))) {
      alpha[s] = -1;
      return;
    }
    alpha[s] = 0;
    q[s] = {expand.vertex_of(static_cast<std::uint32_t>(s))};
  });

  // Step (2): grow Q by halving radii, j = T .. 0. Slots advance
  // independently (each reads shared history, writes only its own Q/α);
  // collisions tally per slot and flush after each radius.
  std::vector<std::uint64_t> coll(num);
  for (std::int64_t j = static_cast<std::int64_t>(expand.rounds()); j >= 0;
       --j) {
    ++stats.pram_steps;
    util::parallel_for(0, num, [&](std::size_t s) {
      coll[s] = 0;
      if (alpha[s] < 0) return;
      // Every member of Q(u) must be live in round j.
      bool all_live = true;
      for (VertexId v : q[s]) {
        std::uint32_t sv = expand.slot_of(v);
        if (sv == ExpandEngine::kNoSlot ||
            !expand.live_in_round(sv, static_cast<std::uint32_t>(j))) {
          all_live = false;
          break;
        }
      }
      if (!all_live) return;
      // Q'(u) = hash of ∪_{v∈Q(u)} H_j(v); reject on collision or leader.
      VertexTable qp(cap);
      bool has_leader = false;
      for (VertexId v : q[s]) {
        std::uint32_t sv = expand.slot_of(v);
        for (VertexId w : expand.history(static_cast<std::uint32_t>(j), sv)) {
          std::uint32_t sw = expand.slot_of(w);
          if (sw != ExpandEngine::kNoSlot && leader[sw]) {
            has_leader = true;
            break;
          }
          if (qp.insert_at(static_cast<std::uint32_t>(hv(w, cap)), w) ==
              VertexTable::Insert::kCollision) {
            ++coll[s];
            break;
          }
        }
        if (has_leader || qp.collided()) break;
      }
      if (!has_leader && !qp.collided()) {
        q[s] = qp.items();
        alpha[s] += std::int64_t{1} << j;
      }
    });
    stats.hash_collisions += util::parallel_reduce(
        std::size_t{0}, static_cast<std::size_t>(num), std::uint64_t{0},
        [&](std::size_t s) { return coll[s]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }

  // Step (3): leader-neighbour marks over current graph arcs (idempotent
  // stores: every writer stores 1).
  std::vector<std::uint8_t> leader_neighbor(num, 0);
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    const Arc& a = arcs[i];
    if (a.u == a.v) return;
    std::uint32_t su = expand.slot_of(a.u);
    std::uint32_t sv = expand.slot_of(a.v);
    if (su == ExpandEngine::kNoSlot || sv == ExpandEngine::kNoSlot) return;
    if (leader[su]) util::relaxed_store(leader_neighbor[sv], std::uint8_t{1});
    if (leader[sv]) util::relaxed_store(leader_neighbor[su], std::uint8_t{1});
  });

  // Step (4): β = exact distance to the nearest leader when within α + 1.
  std::vector<std::uint64_t> beta(num);
  util::parallel_for(0, num, [&](std::size_t s) {
    beta[s] = kInfDist;
    if (leader[s]) {
      beta[s] = 0;
      return;
    }
    if (alpha[s] < 0) return;
    for (VertexId w : q[s]) {
      std::uint32_t sw = expand.slot_of(w);
      if (sw != ExpandEngine::kNoSlot && leader_neighbor[sw]) {
        beta[s] = static_cast<std::uint64_t>(alpha[s]) + 1;
        break;
      }
    }
  });
  stats.pram_steps += 2;

  // Steps (5)+(6): each u with β > 0 links to a graph neighbour one layer
  // closer to the leader; the original arc joins the forest. The winning
  // arc resolves by fetch-min on the packed (arc index, side) key, so the
  // same link realises on every thread count.
  constexpr std::uint64_t kNone = static_cast<std::uint64_t>(-1);
  std::vector<std::uint64_t> chosen(num);
  util::parallel_for(0, num, [&](std::size_t s) { chosen[s] = kNone; });
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    const Arc& a = arcs[i];
    if (a.u == a.v) return;
    std::uint32_t su = expand.slot_of(a.u);
    std::uint32_t sv = expand.slot_of(a.v);
    if (su == ExpandEngine::kNoSlot || sv == ExpandEngine::kNoSlot) return;
    if (beta[su] != kInfDist && beta[sv] != kInfDist) {
      const std::uint64_t key = static_cast<std::uint64_t>(i) << 1;
      if (beta[su] == beta[sv] + 1) util::atomic_min(chosen[su], key);
      if (beta[sv] == beta[su] + 1) util::atomic_min(chosen[sv], key | 1);
    }
  });
  util::parallel_for(0, num, [&](std::size_t s) {
    if (chosen[s] == kNone) return;
    const Arc& a = arcs[chosen[s] >> 1];
    const VertexId target = (chosen[s] & 1) ? a.u : a.v;
    VertexId v = expand.vertex_of(static_cast<std::uint32_t>(s));
    LOGCC_DCHECK(forest.is_root(v));
    forest.set_parent(v, target);
    // Two endpoints may pick the same arc: idempotent store.
    util::relaxed_store(in_forest[a.orig], std::uint8_t{1});
  });
  stats.pram_steps += 2;
}

}  // namespace

SfResult theorem2_sf(const graph::ArcsInput& in,
                     const SpanningForestParams& params) {
  SfResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  const std::uint64_t n = in.num_vertices();
  ParentForest forest(n);
  std::vector<Arc> arcs = arcs_from_input(in);
  drop_loops(arcs);
  dedup_arcs(arcs);
  const std::uint64_t m0 = std::max<std::uint64_t>(arcs.size(), 1);
  std::vector<std::uint8_t> in_forest(in.num_edges(), 0);

  std::vector<std::uint64_t> seen_scratch;  // reused by every phase
  ExpandScratch expand_scratch;             // ditto (slot map + fill buffers)

  // FOREST-PREPARE: Vanilla-SF densification.
  if (has_nonloop(arcs)) {
    std::uint64_t prepare_phases = 0;
    const std::uint64_t phases_before = out.stats.phases;
    std::uint64_t budget = params.prepare_max_phases;
    if (budget == SpanningForestParams::kAutoPreparePhases)
      budget =
          static_cast<std::uint64_t>(2.0 * util::loglog_density(n, m0)) + 4;
    VanillaOptions vo;
    vo.max_phases = 1;
    std::vector<VertexId> ongoing;
    while (prepare_phases < budget && has_nonloop(arcs)) {
      util::scratch_arena_round_reset();
      collect_ongoing(forest, arcs, seen_scratch, ongoing);
      if (static_cast<double>(m0) /
              std::max<double>(1.0, static_cast<double>(ongoing.size())) >=
          params.prepare_target_density)
        break;
      out.stats.prepare_used = true;
      vo.seed = util::mix64(params.seed, 0xF0AE57 + prepare_phases);
      vanilla_sf_phases(forest, arcs, in_forest, vo, out.stats);
      ++prepare_phases;
    }
    out.stats.prepare_phases += out.stats.phases - phases_before;
    out.stats.phases = phases_before;
  }

  std::uint64_t max_phases = params.max_phases;
  if (max_phases == 0) {
    max_phases =
        static_cast<std::uint64_t>(8.0 * util::loglog_density(n, m0)) + 24;
  }

  std::uint64_t phase = 0;
  std::vector<VertexId> ongoing;
  std::vector<std::uint8_t> leader;
  while (true) {
    util::scratch_arena_round_reset();
    dedup_arcs(arcs);
    drop_loops(arcs);
    if (!has_nonloop(arcs)) break;
    if (phase >= max_phases) {
      out.stats.finisher_used = true;
      deterministic_contract_sf(forest, arcs, in_forest, out.stats);
      break;
    }
    ++phase;
    ++out.stats.phases;

    collect_ongoing(forest, arcs, seen_scratch, ongoing);
    const double delta =
        std::max(2.0, static_cast<double>(m0) /
                          std::max<double>(1.0, static_cast<double>(ongoing.size())));
    const double b = std::max(2.0, std::pow(delta, params.b_exp));

    ExpandParams ep;
    ep.seed = util::mix64(params.seed, 0x5F00 + phase);
    ep.table_capacity = static_cast<std::uint32_t>(
        std::clamp<double>(std::pow(delta, params.table_exp),
                           params.min_table_capacity, double(1u << 22)));
    const double block_size = std::max(4.0, std::pow(delta, params.block_exp));
    ep.block_count = std::max<std::uint64_t>(
        2 * ongoing.size() + 1,
        static_cast<std::uint64_t>(static_cast<double>(m0) / block_size));
    ep.max_rounds = util::ceil_log2(std::max<std::uint64_t>(n, 2)) + 4;
    ep.keep_history = true;  // TREE-LINK consumes H_j

    ExpandEngine expand(n, ongoing, arcs, ep, out.stats, &expand_scratch);
    expand.run();

    VoteParams vp;
    vp.dormant_leader_prob = std::pow(b, -2.0 / 3.0);
    vp.seed = util::mix64(params.seed, 0x5F0E + phase);
    vote(expand, vp, out.stats, leader);

    out.stats.peak_space_words = std::max<std::uint64_t>(
        out.stats.peak_space_words,
        arcs.size() * 3 + static_cast<std::uint64_t>(ongoing.size()) *
                              ep.table_capacity * (expand.rounds() + 2));
    out.stats.total_block_words +=
        static_cast<std::uint64_t>(ongoing.size()) * ep.table_capacity;

    tree_link(expand, leader, arcs, forest, in_forest, out.stats);

    // TREE-SHORTCUT: BFS trees have height ≤ d; flatten fully.
    out.stats.pram_steps += forest.flatten();
    alter(arcs, forest);
    drop_loops(arcs);
  }

  for (std::uint64_t i = 0; i < in_forest.size(); ++i)
    if (in_forest[i]) out.forest_edges.push_back(i);
  return out;
}

SfResult theorem2_sf(const graph::EdgeList& el,
                     const SpanningForestParams& params) {
  return theorem2_sf(graph::ArcsInput::from_edges(el), params);
}

}  // namespace logcc::core
