#include "core/compact.hpp"

#include <algorithm>

#include "core/vanilla.hpp"
#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"

namespace logcc::core {

std::optional<std::vector<std::uint32_t>> approximate_compaction_vec(
    const std::vector<std::uint8_t>& flags, std::uint64_t seed,
    std::uint32_t max_rounds) {
  const std::uint64_t n = flags.size();
  std::vector<std::uint32_t> items;
  for (std::uint64_t i = 0; i < n; ++i)
    if (flags[i]) items.push_back(static_cast<std::uint32_t>(i));
  std::vector<std::uint32_t> slot(n, static_cast<std::uint32_t>(-1));
  if (items.empty()) return slot;
  const std::uint64_t cells = 2 * items.size();

  std::vector<std::uint32_t> owner(cells, static_cast<std::uint32_t>(-1));
  std::vector<std::uint32_t> unplaced = std::move(items);
  for (std::uint32_t round = 0; round < max_rounds && !unplaced.empty();
       ++round) {
    auto h = util::PairwiseHash::from_seed(seed, 0xC0417 + round);
    // Contend: last write per cell wins (the arbitrary resolution); winners
    // re-read and claim.
    std::vector<std::uint32_t> contender(cells, static_cast<std::uint32_t>(-1));
    for (std::uint32_t id : unplaced) {
      std::uint64_t c = h(id, cells);
      if (owner[c] == static_cast<std::uint32_t>(-1)) contender[c] = id;
    }
    std::vector<std::uint32_t> still;
    for (std::uint32_t id : unplaced) {
      std::uint64_t c = h(id, cells);
      if (owner[c] == static_cast<std::uint32_t>(-1) && contender[c] == id) {
        owner[c] = id;
        slot[id] = static_cast<std::uint32_t>(c);
      } else {
        still.push_back(id);
      }
    }
    unplaced.swap(still);
  }
  if (!unplaced.empty()) return std::nullopt;
  return slot;
}

CompactResult compact(const graph::EdgeList& el, const CompactParams& params) {
  CompactResult out;
  const std::uint64_t n = el.n;
  out.outer.reset(n);
  std::vector<Arc> arcs = arcs_from_edges(el);
  drop_loops(arcs);
  dedup_arcs(arcs);
  const std::uint64_t m0 = std::max<std::uint64_t>(arcs.size(), 1);

  // PREPARE: Vanilla phases until density target or the phase budget.
  std::uint64_t phases = 0;
  std::uint64_t budget = params.prepare_max_phases;
  if (budget == CompactParams::kAutoPreparePhases)
    budget =
        static_cast<std::uint64_t>(2.0 * util::loglog_density(n, m0)) + 4;
  VanillaOptions vo;
  vo.max_phases = 1;
  std::vector<std::uint8_t> seen_scratch;  // reused by every phase
  while (phases < budget && has_nonloop(arcs)) {
    std::uint64_t ongoing = count_ongoing(out.outer, arcs, seen_scratch);
    if (static_cast<double>(m0) /
            std::max<double>(1.0, static_cast<double>(ongoing)) >=
        params.target_density)
      break;
    out.stats.prepare_used = true;
    vo.seed = util::mix64(params.seed, 0xC0DE00 + phases);
    vanilla_phases(out.outer, arcs, vo, out.stats);
    ++phases;
  }
  // COMPACT's densification is PREPARE work, not theorem-loop phases.
  out.stats.prepare_phases += out.stats.phases;
  out.stats.phases = 0;

  // Rename ongoing roots via approximate compaction.
  std::vector<std::uint8_t> ongoing_flag(n, 0);
  for (const Arc& a : arcs) {
    if (a.u == a.v) continue;
    ongoing_flag[a.u] = 1;
    ongoing_flag[a.v] = 1;
  }
  std::uint64_t k = 0;
  for (std::uint64_t v = 0; v < n; ++v) k += ongoing_flag[v];

  out.renamed_of.assign(n, CompactResult::kInvalid);
  if (k == 0) {
    out.n_compact = 0;
    return out;
  }

  auto slots = approximate_compaction_vec(ongoing_flag, params.seed);
  LOGCC_CHECK_MSG(slots.has_value(), "approximate compaction failed");
  out.n_compact = 2 * k;
  out.exists.assign(out.n_compact, 0);
  out.orig_of.assign(out.n_compact, graph::kInvalidVertex);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!ongoing_flag[v]) continue;
    std::uint32_t cid = (*slots)[v];
    out.renamed_of[v] = cid;
    out.exists[cid] = 1;
    out.orig_of[cid] = static_cast<VertexId>(v);
  }
  out.arcs.reserve(arcs.size());
  for (const Arc& a : arcs) {
    if (a.u == a.v) continue;
    out.arcs.push_back({static_cast<VertexId>(out.renamed_of[a.u]),
                        static_cast<VertexId>(out.renamed_of[a.v]), a.orig});
  }
  out.stats.pram_steps += 3;  // compaction is O(log* n); modeled as O(1) here
  return out;
}

}  // namespace logcc::core
