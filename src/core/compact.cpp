#include "core/compact.hpp"

#include <algorithm>

#include "core/round_arena.hpp"
#include "core/vanilla.hpp"
#include "util/arena.hpp"
#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

std::optional<std::vector<std::uint32_t>> approximate_compaction_vec(
    const std::vector<std::uint8_t>& flags, std::uint64_t seed,
    std::uint32_t max_rounds) {
  constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  const std::uint64_t n = flags.size();
  std::vector<std::uint32_t> items;
  util::parallel_emit(
      n, items,
      [&](std::size_t i) -> std::size_t { return flags[i] ? 1 : 0; },
      [](std::size_t i, std::uint32_t* dst) {
        *dst = static_cast<std::uint32_t>(i);
      });
  std::vector<std::uint32_t> slot(n, kNone);
  if (items.empty()) return slot;
  const std::uint64_t cells = 2 * items.size();

  std::vector<std::uint32_t> owner(cells, kNone);
  std::vector<std::uint32_t> contender(cells);
  std::vector<std::uint32_t> unplaced = std::move(items);
  for (std::uint32_t round = 0; round < max_rounds && !unplaced.empty();
       ++round) {
    util::scratch_arena_round_reset();
    auto h = util::PairwiseHash::from_seed(seed, 0xC0417 + round);
    // Contend by fetch-min (the minimum id wins the cell — a deterministic
    // ARBITRARY resolution); winners re-read and claim their cell, losers
    // stay for the next round via a stable pack.
    util::parallel_for(0, cells, [&](std::size_t c) { contender[c] = kNone; });
    util::parallel_for(0, unplaced.size(), [&](std::size_t i) {
      const std::uint32_t id = unplaced[i];
      const std::uint64_t c = h(id, cells);
      if (owner[c] == kNone) util::atomic_min(contender[c], id);
    });
    util::parallel_for(0, unplaced.size(), [&](std::size_t i) {
      const std::uint32_t id = unplaced[i];
      const std::uint64_t c = h(id, cells);
      // contender[c] == id already implies owner[c] was empty this round
      // (the contend pass only bids on empty cells, so an owned cell keeps
      // contender == kNone). Checking only the contender keeps this pass
      // race-free: the unique winner is the cell's only reader and writer.
      if (contender[c] == id) {
        owner[c] = id;
        slot[id] = static_cast<std::uint32_t>(c);
      }
    });
    util::parallel_pack(unplaced,
                        [&](std::uint32_t id) { return slot[id] == kNone; });
  }
  if (!unplaced.empty()) return std::nullopt;
  return slot;
}

CompactResult compact(const graph::ArcsInput& in, const CompactParams& params) {
  CompactResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  const std::uint64_t n = in.num_vertices();
  out.outer.reset(n);
  std::vector<Arc> arcs = arcs_from_input(in);
  drop_loops(arcs);
  dedup_arcs(arcs);
  const std::uint64_t m0 = std::max<std::uint64_t>(arcs.size(), 1);

  // PREPARE: Vanilla phases until density target or the phase budget.
  std::uint64_t phases = 0;
  std::uint64_t budget = params.prepare_max_phases;
  if (budget == CompactParams::kAutoPreparePhases)
    budget =
        static_cast<std::uint64_t>(2.0 * util::loglog_density(n, m0)) + 4;
  VanillaOptions vo;
  vo.max_phases = 1;
  std::vector<std::uint64_t> seen_scratch;  // reused by every phase
  while (phases < budget && has_nonloop(arcs)) {
    util::scratch_arena_round_reset();
    std::uint64_t ongoing = count_ongoing(out.outer, arcs, seen_scratch);
    if (static_cast<double>(m0) /
            std::max<double>(1.0, static_cast<double>(ongoing)) >=
        params.target_density)
      break;
    out.stats.prepare_used = true;
    vo.seed = util::mix64(params.seed, 0xC0DE00 + phases);
    vanilla_phases(out.outer, arcs, vo, out.stats);
    ++phases;
  }
  // COMPACT's densification is PREPARE work, not theorem-loop phases.
  out.stats.prepare_phases += out.stats.phases;
  out.stats.phases = 0;

  // Rename ongoing roots via approximate compaction. The endpoint marks are
  // idempotent stores; the count is a parallel reduce.
  std::vector<std::uint8_t> ongoing_flag(n, 0);
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    const Arc& a = arcs[i];
    if (a.u == a.v) return;
    util::relaxed_store(ongoing_flag[a.u], std::uint8_t{1});
    util::relaxed_store(ongoing_flag[a.v], std::uint8_t{1});
  });
  const std::uint64_t k = util::parallel_reduce(
      std::size_t{0}, n, std::uint64_t{0},
      [&](std::size_t v) {
        return static_cast<std::uint64_t>(ongoing_flag[v]);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });

  out.renamed_of.assign(n, CompactResult::kInvalid);
  if (k == 0) {
    out.n_compact = 0;
    return out;
  }

  auto slots = approximate_compaction_vec(ongoing_flag, params.seed);
  LOGCC_CHECK_MSG(slots.has_value(), "approximate compaction failed");
  out.n_compact = 2 * k;
  out.exists.assign(out.n_compact, 0);
  out.orig_of.assign(out.n_compact, graph::kInvalidVertex);
  util::parallel_for(0, n, [&](std::size_t v) {
    if (!ongoing_flag[v]) return;
    std::uint32_t cid = (*slots)[v];
    out.renamed_of[v] = cid;
    out.exists[cid] = 1;
    out.orig_of[cid] = static_cast<VertexId>(v);
  });
  util::parallel_emit(
      arcs.size(), out.arcs,
      [&](std::size_t i) -> std::size_t {
        return arcs[i].u != arcs[i].v ? 1 : 0;
      },
      [&](std::size_t i, Arc* dst) {
        const Arc& a = arcs[i];
        *dst = {static_cast<VertexId>(out.renamed_of[a.u]),
                static_cast<VertexId>(out.renamed_of[a.v]), a.orig};
      });
  out.stats.pram_steps += 3;  // compaction is O(log* n); modeled as O(1) here
  return out;
}

CompactResult compact(const graph::EdgeList& el, const CompactParams& params) {
  return compact(graph::ArcsInput::from_edges(el), params);
}

}  // namespace logcc::core
