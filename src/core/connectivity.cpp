#include "core/connectivity.hpp"

#include "baselines/awerbuch_shiloach.hpp"
#include "baselines/bfs_cc.hpp"
#include "baselines/label_propagation.hpp"
#include "baselines/shiloach_vishkin.hpp"
#include "baselines/union_find.hpp"
#include "core/round_arena.hpp"
#include "core/vanilla.hpp"
#include "graph/graph_algos.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace logcc {

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> kAll = {
      Algorithm::kFasterCC,   Algorithm::kTheorem1,
      Algorithm::kVanilla,    Algorithm::kShiloachVishkin,
      Algorithm::kAwerbuchShiloach, Algorithm::kLabelProp,
      Algorithm::kLiuTarjan,  Algorithm::kUnionFind,
      Algorithm::kBFS};
  return kAll;
}

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kFasterCC: return "faster-cc";
    case Algorithm::kTheorem1: return "theorem1";
    case Algorithm::kVanilla: return "vanilla";
    case Algorithm::kShiloachVishkin: return "sv";
    case Algorithm::kAwerbuchShiloach: return "as";
    case Algorithm::kLabelProp: return "label-prop";
    case Algorithm::kLiuTarjan: return "liu-tarjan";
    case Algorithm::kUnionFind: return "union-find";
    case Algorithm::kBFS: return "bfs";
  }
  return "?";
}

Algorithm algorithm_from_string(const std::string& name) {
  for (Algorithm a : all_algorithms())
    if (name == to_string(a)) return a;
  LOGCC_CHECK_MSG(false, "unknown algorithm name");
  return Algorithm::kBFS;
}

ComponentsResult connected_components(const graph::ArcsInput& in,
                                      Algorithm algorithm,
                                      const Options& options) {
  ComponentsResult out;
  std::vector<graph::VertexId> labels;
  // One round-scratch arena for the whole run: the paper drivers install
  // their own (inner scopes no-op), and the round-loop baselines get the
  // same steady-state zero-allocation behaviour through this one.
  core::RoundArena round_arena;
  core::RoundArena::Scope arena_scope(round_arena);
  util::Timer timer;
  switch (algorithm) {
    case Algorithm::kFasterCC: {
      core::FasterCcParams p = options.faster;
      p.seed = options.seed;
      p.policy = options.policy;
      auto r = core::faster_cc(in, p);
      labels = std::move(r.labels);
      out.stats = r.stats;
      break;
    }
    case Algorithm::kTheorem1: {
      core::Theorem1Params p =
          options.policy == core::ParamPolicy::Kind::kPaper
              ? core::Theorem1Params::paper(in.num_vertices(), in.num_edges())
              : options.theorem1;
      p.seed = options.seed;
      auto r = core::theorem1_cc(in, p);
      labels = std::move(r.labels);
      out.stats = r.stats;
      break;
    }
    case Algorithm::kVanilla: {
      auto r = core::vanilla_cc(in, options.seed);
      labels = std::move(r.labels);
      out.stats = r.stats;
      break;
    }
    case Algorithm::kShiloachVishkin: {
      auto r = baselines::shiloach_vishkin(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
    case Algorithm::kAwerbuchShiloach: {
      auto r = baselines::awerbuch_shiloach(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
    case Algorithm::kLabelProp: {
      auto r = baselines::label_propagation(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
    case Algorithm::kLiuTarjan: {
      auto r = baselines::liu_tarjan(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
    case Algorithm::kUnionFind: {
      auto r = baselines::union_find_cc(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
    case Algorithm::kBFS: {
      auto r = baselines::bfs_cc(in);
      labels = std::move(r.labels);
      out.stats.rounds = r.rounds;
      break;
    }
  }
  // Canonicalize + sizes + count in one snapshot build — every algorithm
  // exits through the same ComponentIndex vocabulary.
  out.index = core::ComponentIndex::from_labels(std::move(labels));
  out.seconds = timer.seconds();
  return out;
}

ComponentsResult connected_components(const graph::EdgeList& el,
                                      Algorithm algorithm,
                                      const Options& options) {
  return connected_components(graph::ArcsInput::from_edges(el), algorithm,
                              options);
}

ForestResult spanning_forest(const graph::ArcsInput& in, SfAlgorithm algorithm,
                             const Options& options) {
  ForestResult out;
  core::RoundArena round_arena;
  core::RoundArena::Scope arena_scope(round_arena);
  util::Timer timer;
  switch (algorithm) {
    case SfAlgorithm::kTheorem2: {
      core::SpanningForestParams p = options.theorem1;
      p.seed = options.seed;
      auto r = core::theorem2_sf(in, p);
      out.forest_edges = std::move(r.forest_edges);
      out.stats = r.stats;
      break;
    }
    case SfAlgorithm::kVanillaSF: {
      auto r = core::vanilla_sf(in, options.seed);
      out.forest_edges = std::move(r.forest_edges);
      out.stats = r.stats;
      break;
    }
  }
  out.seconds = timer.seconds();
  return out;
}

ForestResult spanning_forest(const graph::EdgeList& el, SfAlgorithm algorithm,
                             const Options& options) {
  return spanning_forest(graph::ArcsInput::from_edges(el), algorithm, options);
}

bool verify_components(const graph::ArcsInput& in,
                       const core::ComponentIndex& index) {
  const std::uint64_t n = in.num_vertices();
  const std::vector<graph::VertexId>& labels = index.labels();
  if (labels.size() != n) return false;
  // (1) Edges never cross label classes. for_each_edge has no break, so
  // after the first violation the sweep degrades to a no-op per edge
  // rather than re-reading labels for the rest of a large dataset.
  bool edges_ok = true;
  in.for_each_edge([&](graph::VertexId u, graph::VertexId v, std::uint32_t) {
    if (!edges_ok) return;
    if (u >= n || v >= n || labels[u] != labels[v]) edges_ok = false;
  });
  if (!edges_ok) return false;
  // (2) Label classes are not coarser than the true partition, and the
  // index's count and per-component sizes are the truth: recompute both
  // with union-find (no shared code with the PRAM algorithms) in the same
  // O(m α(n)) pass and compare.
  baselines::DisjointSets ds(n);
  in.for_each_edge([&](graph::VertexId u, graph::VertexId v, std::uint32_t) {
    ds.unite(u, v);
  });
  if (index.num_components() != ds.num_sets()) return false;
  std::vector<std::uint64_t> uf_size(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) ++uf_size[ds.find(graph::VertexId(v))];
  for (std::uint64_t v = 0; v < n; ++v) {
    if (index.component_size(graph::VertexId(v)) !=
        uf_size[ds.find(graph::VertexId(v))])
      return false;
  }
  return true;
}

bool verify_components(const graph::ArcsInput& in,
                       const std::vector<graph::VertexId>& labels) {
  if (labels.size() != in.num_vertices()) return false;
  return verify_components(in, core::ComponentIndex::from_labels(labels));
}

bool verify_components(const graph::EdgeList& el,
                       const std::vector<graph::VertexId>& labels) {
  return verify_components(graph::ArcsInput::from_edges(el), labels);
}

}  // namespace logcc
