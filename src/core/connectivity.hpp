// Public API of logcc.
//
// One call computes connected components (or a spanning forest) of an
// undirected edge list with the algorithm of your choice — the paper's three
// algorithms plus the classical baselines — and reports the paper-relevant
// cost metrics alongside the answer.
//
//   #include "core/connectivity.hpp"
//   auto g = logcc::graph::make_gnm(1'000'000, 4'000'000, /*seed=*/42);
//   auto r = logcc::connected_components(g);     // Theorem-3 algorithm
//   // r.labels[v] == r.labels[w]  iff  v and w are connected
//   // r.stats.rounds, r.stats.peak_space_words, ...
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cc_theorem1.hpp"
#include "core/faster_cc.hpp"
#include "core/metrics.hpp"
#include "core/spanning_forest.hpp"
#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc {

enum class Algorithm {
  kFasterCC,          // Theorem 3: O(log d + log log_{m/n} n)
  kTheorem1,          // Theorem 1: O(log d · log log_{m/n} n)
  kVanilla,           // Reif random-vote: O(log n)
  kShiloachVishkin,   // SV'82: O(log n), deterministic
  kAwerbuchShiloach,  // AS'87: O(log n), deterministic
  kLabelProp,         // min-label propagation: O(d)
  kLiuTarjan,         // LT'19 style hook+shortcut+alter: O(log n)
  kUnionFind,         // sequential union-find
  kBFS,               // sequential BFS (the oracle)
};

/// All algorithms, for sweeps.
const std::vector<Algorithm>& all_algorithms();
const char* to_string(Algorithm a);
/// Parses the names printed by to_string; aborts on unknown names.
Algorithm algorithm_from_string(const std::string& name);

struct Options {
  std::uint64_t seed = 1;
  core::ParamPolicy::Kind policy = core::ParamPolicy::Kind::kPractical;
  /// Overrides for the paper drivers; leave default for auto.
  core::FasterCcParams faster;
  core::Theorem1Params theorem1;
};

struct ComponentsResult {
  std::vector<graph::VertexId> labels;  // canonical: min id per component
  core::RunStats stats;
  double seconds = 0.0;
  std::uint64_t num_components = 0;
};

/// The ArcsInput overload is the real entry point: CSR-backed inputs (mmap
/// datasets, Graph views) run with zero intermediate EdgeList
/// materialization, and results are bit-identical to running the EdgeList
/// path on the same canonical edge order. The EdgeList overload is a
/// forwarding shim.
ComponentsResult connected_components(
    const graph::ArcsInput& in, Algorithm algorithm = Algorithm::kFasterCC,
    const Options& options = {});
ComponentsResult connected_components(
    const graph::EdgeList& el, Algorithm algorithm = Algorithm::kFasterCC,
    const Options& options = {});

enum class SfAlgorithm {
  kTheorem2,  // §C
  kVanillaSF  // §C.1
};

struct ForestResult {
  std::vector<std::uint64_t> forest_edges;  // canonical edge indices
  core::RunStats stats;
  double seconds = 0.0;
};

ForestResult spanning_forest(const graph::ArcsInput& in,
                             SfAlgorithm algorithm = SfAlgorithm::kTheorem2,
                             const Options& options = {});
ForestResult spanning_forest(const graph::EdgeList& el,
                             SfAlgorithm algorithm = SfAlgorithm::kTheorem2,
                             const Options& options = {});

/// Independent O(m α(n)) verification that `labels` is exactly the
/// component labeling of the input: every edge joins equal labels, and the
/// number of distinct labels equals the true component count (via
/// union-find, no shared code with the PRAM algorithms). Use when the
/// caller wants a certificate rather than trust. The ArcsInput overload
/// verifies mmap-backed datasets without materializing their edges.
bool verify_components(const graph::ArcsInput& in,
                       const std::vector<graph::VertexId>& labels);
bool verify_components(const graph::EdgeList& el,
                       const std::vector<graph::VertexId>& labels);

}  // namespace logcc
