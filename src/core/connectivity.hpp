// Public API of logcc.
//
// One call computes connected components (or a spanning forest) of an
// undirected edge list with the algorithm of your choice — the paper's three
// algorithms plus the classical baselines — and reports the paper-relevant
// cost metrics alongside the answer.
//
//   #include "core/connectivity.hpp"
//   auto g = logcc::graph::make_gnm(1'000'000, 4'000'000, /*seed=*/42);
//   auto r = logcc::connected_components(g);     // Theorem-3 algorithm
//   // r.index.connected(v, w), r.labels()[v], r.num_components()
//   // r.stats.rounds, r.stats.peak_space_words, ...
//
// Every algorithm produces a core::ComponentIndex — canonical min-id
// labels, per-component sizes, and the component count in one snapshot
// type. The incremental serve::ConnectivityEngine publishes the same type
// between epochs, so batch, incremental, and bench layers all speak one
// result vocabulary (see core/component_index.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cc_theorem1.hpp"
#include "core/component_index.hpp"
#include "core/faster_cc.hpp"
#include "core/metrics.hpp"
#include "core/spanning_forest.hpp"
#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc {

enum class Algorithm {
  kFasterCC,          // Theorem 3: O(log d + log log_{m/n} n)
  kTheorem1,          // Theorem 1: O(log d · log log_{m/n} n)
  kVanilla,           // Reif random-vote: O(log n)
  kShiloachVishkin,   // SV'82: O(log n), deterministic
  kAwerbuchShiloach,  // AS'87: O(log n), deterministic
  kLabelProp,         // min-label propagation: O(d)
  kLiuTarjan,         // LT'19 style hook+shortcut+alter: O(log n)
  kUnionFind,         // sequential union-find
  kBFS,               // sequential BFS (the oracle)
};

/// All algorithms, for sweeps.
const std::vector<Algorithm>& all_algorithms();
const char* to_string(Algorithm a);
/// Parses the names printed by to_string; aborts on unknown names.
Algorithm algorithm_from_string(const std::string& name);

struct Options {
  std::uint64_t seed = 1;
  core::ParamPolicy::Kind policy = core::ParamPolicy::Kind::kPractical;
  /// Overrides for the paper drivers; leave default for auto.
  core::FasterCcParams faster;
  core::Theorem1Params theorem1;
};

struct ComponentsResult {
  core::ComponentIndex index;  // canonical snapshot: labels + sizes + count
  core::RunStats stats;
  double seconds = 0.0;

  /// Convenience views into `index` (the historical field names).
  const std::vector<graph::VertexId>& labels() const {
    return index.labels();
  }
  std::uint64_t num_components() const { return index.num_components(); }
};

/// The ArcsInput overload is the front door: CSR-backed inputs (mmap
/// datasets, Graph views) run with zero intermediate EdgeList
/// materialization, and results are bit-identical to running the EdgeList
/// path on the same canonical edge order.
ComponentsResult connected_components(
    const graph::ArcsInput& in, Algorithm algorithm = Algorithm::kFasterCC,
    const Options& options = {});
/// Legacy: EdgeList forwarding shim, kept for source compatibility. New
/// code should wrap its edges with graph::ArcsInput::from_edges (free) and
/// call the overload above — the zero-copy path is the documented entry
/// point (see docs/ARCHITECTURE.md, "ArcsInput layer").
ComponentsResult connected_components(
    const graph::EdgeList& el, Algorithm algorithm = Algorithm::kFasterCC,
    const Options& options = {});

enum class SfAlgorithm {
  kTheorem2,  // §C
  kVanillaSF  // §C.1
};

struct ForestResult {
  std::vector<std::uint64_t> forest_edges;  // canonical edge indices
  core::RunStats stats;
  double seconds = 0.0;
};

ForestResult spanning_forest(const graph::ArcsInput& in,
                             SfAlgorithm algorithm = SfAlgorithm::kTheorem2,
                             const Options& options = {});
/// Legacy: EdgeList forwarding shim — see connected_components above.
ForestResult spanning_forest(const graph::EdgeList& el,
                             SfAlgorithm algorithm = SfAlgorithm::kTheorem2,
                             const Options& options = {});

/// Independent O(m α(n)) verification that `index` is exactly the component
/// structure of the input: every edge joins equal labels, and the index's
/// component count AND per-component sizes match a union-find recomputation
/// (no shared code with the PRAM algorithms) — all in the same pass. Use
/// when the caller wants a certificate rather than trust. The ArcsInput
/// overload verifies mmap-backed datasets without materializing their
/// edges.
bool verify_components(const graph::ArcsInput& in,
                       const core::ComponentIndex& index);
/// Label-vector shims (legacy): wrap `labels` in a ComponentIndex (via
/// from_labels) and verify that. Equal labels iff same component is still
/// the only contract on the input vector.
bool verify_components(const graph::ArcsInput& in,
                       const std::vector<graph::VertexId>& labels);
bool verify_components(const graph::EdgeList& el,
                       const std::vector<graph::VertexId>& labels);

}  // namespace logcc
