// RoundArena — the caller-owned round-scratch arena of the algorithm
// drivers, extending the ExpandScratch caller-owned-scratch protocol
// (docs/ARCHITECTURE.md) from "one kernel's O(n) workspace" to "every
// kernel temporary of a round".
//
// Ownership rule:
//   1. The *driver* (vanilla_cc, theorem1_cc, faster_cc, compact,
//      spanning_forest, connected_components, ...) owns one RoundArena for
//      the whole run and installs it with RoundArena::Scope.
//   2. Round loops call util::scratch_arena_round_reset() at the top of
//      every round/phase. Between rounds nothing lives in the arena — every
//      kernel temporary (a util::ScratchBuffer) dies inside its kernel
//      call — so the reset is always safe, including from a round loop
//      nested inside another driver's loop (PREPARE's Vanilla phases inside
//      Theorem 1, EXPAND's doubling rounds inside a phase).
//   3. Nothing that escapes a kernel call is arena-backed. Outputs and
//      cross-round state stay in caller-hoisted vectors (which reach their
//      high-water capacity within a phase or two and then stop allocating).
//
// Net effect: after warm-up, a steady-state round performs zero heap
// allocations — the arena serves every scan-primitive temporary from its
// consolidated block and the hoisted vectors reuse their capacity
// (tests/test_round_arena.cpp pins this with an operator-new counter).
//
// Scope nesting: the outermost driver wins. When a driver runs inside
// another driver's scope (faster_cc's postprocess runs theorem1_phases),
// the inner Scope is a no-op and kernels keep drawing from the outer arena
// — one arena per run, not one per layer.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/arena.hpp"

namespace logcc::core {

class RoundArena {
 public:
  RoundArena() = default;

  util::MonotonicArena& arena() { return arena_; }

  /// Rewinds the arena for the next round. Precondition: no live
  /// ScratchBuffer (true between kernel calls). Equivalent to
  /// util::scratch_arena_round_reset() when this arena is the active one.
  void begin_round() { arena_.reset(); }

  std::uint64_t rounds_begun() const { return arena_.resets(); }
  std::size_t high_water_bytes() const { return arena_.high_water(); }
  std::uint64_t heap_block_allocations() const {
    return arena_.block_allocations();
  }

  /// Installs the arena as the thread's active scratch arena — unless one
  /// is already active (outermost driver wins; see the ownership rule).
  class Scope {
   public:
    explicit Scope(RoundArena& arena)
        : installed_(util::active_scratch_arena() == nullptr),
          inner_(installed_ ? &arena.arena() : util::active_scratch_arena()) {}
    bool installed() const { return installed_; }

   private:
    bool installed_;  // declared before inner_: decides what it installs
    util::ScratchArenaScope inner_;
  };

 private:
  util::MonotonicArena arena_;
};

}  // namespace logcc::core
