// Theorem 1 (§B): Connected Components in O(log d · log log_{m/n} n) time.
//
//   PREPARE; repeat { EXPAND; VOTE; LINK; SHORTCUT; ALTER } until no edge
//   exists other than loops.
//
// PREPARE densifies (runs Vanilla phases) when m/n is small; each phase then
// expands neighbour sets to balls of doubling radius (O(log d) inner
// rounds), elects leaders, and contracts, multiplying the density m/n' by a
// b^{Ω(1)} factor per phase — hence O(log log) phases.
#pragma once

#include <cstdint>
#include <vector>

#include "core/budget.hpp"
#include "core/building_blocks.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

struct Theorem1Params {
  std::uint64_t seed = 1;

  // Per-phase sizing from the density δ = m / n' (paper exponents in
  // comments): block size δ^block_exp (2/3), table |H(u)| = δ^table_exp
  // (1/3), progress parameter b = δ^b_exp (1/18). Practical defaults trade
  // the asymptotic constants for observable progress at laptop scale
  // (DESIGN.md §5.2).
  double block_exp = 2.0 / 3.0;
  double table_exp = 2.0 / 3.0;
  double b_exp = 1.0 / 3.0;
  std::uint32_t min_table_capacity = 8;

  /// PREPARE runs Vanilla phases until m/n' reaches this density (the
  /// paper's log^c n) or the graph is solved or the phase budget runs out.
  double prepare_target_density = 64.0;
  /// kAutoPreparePhases resolves to Θ(log log n) phases — the paper's fixed
  /// PREPARE budget (c · log_{8/7} log n). A constant-density stopping rule
  /// alone would contract high-diameter graphs all the way down and erase
  /// the log d term the experiments measure.
  static constexpr std::uint64_t kAutoPreparePhases =
      static_cast<std::uint64_t>(-1);
  std::uint64_t prepare_max_phases = kAutoPreparePhases;

  /// 0 = automatic: C · log log_{m/n} n + K phases before the deterministic
  /// finisher takes over (it essentially never does; bench T4 measures it).
  std::uint64_t max_phases = 0;

  /// true  — n' counted exactly (the COMBINING CRCW assumption B.6);
  /// false — the ñ update rule of §B.5 (pure ARBITRARY CRCW).
  bool exact_count = true;

  /// Paper-faithful exponents; see DESIGN.md §5.2 for why this mode mostly
  /// degenerates to PREPARE at feasible n.
  static Theorem1Params paper(std::uint64_t n, std::uint64_t m);
};

struct CcResult {
  std::vector<VertexId> labels;  // root id per vertex
  RunStats stats;
};

/// ArcsInput is the real entry point (CSR-backed inputs ingest without an
/// EdgeList); the EdgeList overload is a forwarding shim.
CcResult theorem1_cc(const graph::ArcsInput& in,
                     const Theorem1Params& params = {});
CcResult theorem1_cc(const graph::EdgeList& el, const Theorem1Params& params = {});

/// Phase loop only, operating in place on (forest, arcs); used by the
/// Theorem-3 driver as its postprocessing stage. Arcs must connect roots of
/// flat trees.
void theorem1_phases(ParentForest& forest, std::vector<Arc>& arcs,
                     std::uint64_t m0, const Theorem1Params& params,
                     RunStats& stats);

}  // namespace logcc::core
