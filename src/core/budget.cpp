#include "core/budget.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace logcc::core {

namespace {
// b^e with overflow clamping at `cap`.
std::uint64_t pow_clamped(double base, double exponent, std::uint64_t cap) {
  double v = std::pow(base, exponent);
  if (!(v < static_cast<double>(cap))) return cap;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(v));
}
}  // namespace

ParamPolicy ParamPolicy::paper(std::uint64_t n, std::uint64_t m) {
  ParamPolicy p;
  p.kind = Kind::kPaper;
  const double log_n = std::log2(std::max<double>(n, 4));
  // c = 200 makes log^c n astronomically large; after the /log² n division
  // and the cap the effective b_1 is the cap for any feasible n, which the
  // paper itself predicts (Assumption 3.1 gives every vertex a huge block
  // when n is small relative to log^c n).
  const double c = 200.0;
  p.budget_cap = std::max<std::uint64_t>(16, util::next_pow2(4 * std::max(n, m)));
  double b1 = std::max(static_cast<double>(m) / std::max<std::uint64_t>(n, 1),
                       std::pow(log_n, c)) /
              (log_n * log_n);
  p.b1 = b1 >= static_cast<double>(p.budget_cap)
             ? p.budget_cap
             : std::max<std::uint64_t>(4, static_cast<std::uint64_t>(b1));
  p.growth = 1.01;
  p.raise_coeff = 10.0 * log_n;
  p.raise_exponent = 0.1;
  p.table_is_sqrt = true;
  return p;
}

ParamPolicy ParamPolicy::practical(std::uint64_t n, std::uint64_t m) {
  ParamPolicy p;
  p.kind = Kind::kPractical;
  p.budget_cap = std::max<std::uint64_t>(16, util::next_pow2(2 * std::max(n, std::uint64_t{4})));
  p.b1 = std::clamp<std::uint64_t>(m / std::max<std::uint64_t>(n, 1), 4,
                                   p.budget_cap);
  p.growth = 1.5;
  // Calibrated on the F1/A1 workloads: low enough that low-level vertices
  // do not "race" a forced-raising hub, high enough that dense equal-level
  // clusters desynchronise within a few rounds.
  p.raise_coeff = 0.3;
  p.raise_exponent = 0.45;
  p.table_is_sqrt = false;
  return p;
}

std::uint64_t ParamPolicy::budget_for_level(std::uint32_t level) const {
  if (level == 0) return 0;
  // b_ℓ = b1^{growth^{ℓ-1}}, evaluated in log space to avoid overflow.
  double exp_factor = std::pow(growth, static_cast<double>(level - 1));
  double log_b = std::log2(static_cast<double>(std::max<std::uint64_t>(b1, 2))) *
                 exp_factor;
  if (log_b >= 62.0) return budget_cap;
  return std::min<std::uint64_t>(budget_cap,
                                 pow_clamped(2.0, log_b, budget_cap));
}

std::uint32_t ParamPolicy::table_capacity(std::uint64_t budget) const {
  if (budget == 0) return 0;
  std::uint64_t cap = table_is_sqrt
                          ? static_cast<std::uint64_t>(
                                std::sqrt(static_cast<double>(budget)))
                          : budget;
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(cap, 2, 1u << 30));
}

double ParamPolicy::raise_probability(std::uint64_t budget) const {
  // Nonzero even at the budget cap: the random raise is what desynchronises
  // equal-level clusters (Lemma 3.8/D.11 — one raised root absorbs its
  // neighbours through the same round's MAXLINK). The Theorem-3 driver keeps
  // its break condition reachable by applying Step (2) only to roots that
  // still have a non-loop edge.
  if (budget <= 1) return 1.0;
  double p = raise_coeff /
             std::pow(static_cast<double>(budget), raise_exponent);
  return std::clamp(p, 0.0, 1.0);
}

std::uint32_t ParamPolicy::saturation_level() const {
  for (std::uint32_t level = 1; level < 256; ++level) {
    if (budget_for_level(level) >= budget_cap) return level;
  }
  return 256;
}

}  // namespace logcc::core
