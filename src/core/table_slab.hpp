// Bucketized, cache-line-aligned backing store for the per-vertex hash
// tables of EXPAND / EXPAND-MAXLINK.
//
// The logical semantics are exactly VertexTable's (core/hash_table.hpp):
// one value per cell, CRCW collision detection, Insert::{kNew, kPresent,
// kCollision} — tests/test_table_slab.cpp asserts bit-for-bit agreement
// against VertexTable over randomized fill sequences. What changes is the
// *layout*: instead of one heap vector per table (scattered tiny
// allocations, pointer-chased on every table-to-table hop of a doubling
// round), every table is a fixed-slot bucket inside one contiguous 64-byte-
// aligned slab:
//
//   slab (64B-aligned) ───────────────────────────────────────────────
//   │ bucket 0          │ bucket 1          │ bucket 2          │ ...
//   │ slot slot .. pad  │ slot slot .. pad  │ slot slot .. pad  │
//   └──────────────────────────────────────────────────────────────────
//
// Each slot is one 64-bit word `(epoch << 32) | vertex`: a slot is live iff
// its top half equals the slab's current epoch. Bucket strides are chosen
// so a bucket never straddles a cache line — capacities <= 8 get a
// power-of-two stride (1/2/4/8 words, i.e. at most one 64B line probed per
// table), larger ones round up to whole lines — so probing a table touches
// the minimum number of lines and a doubling sweep walks the slab almost
// sequentially.
//
// The epoch stamp is what makes per-round reuse O(1): reset() bumps the
// epoch and every slot in the slab is logically empty again — no per-cell
// re-zeroing, no per-table vector churn. Only freshly grown slab memory is
// zeroed (in parallel, so the pages are first-touched under the same
// contiguous lane segmentation the fill loops use), and an epoch wrap
// (once per 2^32 resets) re-zeroes defensively.
//
// Synchronous rounds ("this round reads last round's tables") snapshot the
// slab with one flat word copy (snapshot_into) instead of materializing
// per-table item vectors; for_each_in iterates a table's items inside such
// a snapshot with the same cell order as for_each.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/hash_table.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::core {

class TableSlab {
 public:
  using Insert = VertexTable::Insert;

  TableSlab() = default;
  TableSlab(const TableSlab&) = delete;
  TableSlab& operator=(const TableSlab&) = delete;

  /// Rebuilds the slab as `num` tables of identical `capacity` (>= 1) and
  /// marks every table empty / not-collided. O(num) + a slab grow on first
  /// use; steady state touches no heap.
  void reset_uniform(std::uint32_t num, std::uint32_t capacity);

  /// Rebuilds the slab as `caps.size()` tables with per-table capacities
  /// (0 = table absent: no slots, all queries empty). Buckets are padded to
  /// whole cache lines so mixed capacities stay line-aligned.
  void reset_variable(std::span<const std::uint32_t> caps);

  std::uint32_t num_tables() const { return num_; }

  std::uint32_t capacity(std::uint32_t t) const {
    return uniform_ ? ucap_ : cap_[t];
  }
  std::uint32_t count(std::uint32_t t) const { return count_[t]; }
  bool collided(std::uint32_t t) const { return collided_[t] != 0; }

  /// Writes `w` into cell `cell` of table `t` — same contract as
  /// VertexTable::insert_at, caller computes cell = h(w, capacity(t)).
  Insert insert_at(std::uint32_t t, std::uint32_t cell, graph::VertexId w) {
    LOGCC_DCHECK(cell < capacity(t));
    std::uint64_t& word = words_[base(t) + cell];
    const std::uint64_t tagged = tag_ | w;
    if (word == tagged) return Insert::kPresent;
    if ((word >> 32) != epoch_) {
      word = tagged;
      ++count_[t];
      return Insert::kNew;
    }
    collided_[t] = 1;
    return Insert::kCollision;
  }

  bool contains_at(std::uint32_t t, std::uint32_t cell,
                   graph::VertexId w) const {
    return cell < capacity(t) && words_[base(t) + cell] == (tag_ | w);
  }

  /// Iterates occupied cells of table `t` in cell order (the same order
  /// VertexTable::for_each / items() produced).
  template <typename Fn>
  void for_each(std::uint32_t t, Fn&& fn) const {
    for_each_in({words_, words_size_}, t, fn);
  }

  /// One flat copy of the live slab words — the whole-generation snapshot a
  /// synchronous round reads while it rewrites the live tables.
  void snapshot_into(std::vector<std::uint64_t>& snap) const;

  /// for_each over table `t` as captured in a snapshot_into copy taken this
  /// epoch.
  template <typename Fn>
  void for_each_in(std::span<const std::uint64_t> words, std::uint32_t t,
                   Fn&& fn) const {
    const std::uint64_t* w = words.data() + base(t);
    const std::uint32_t cap = capacity(t);
    for (std::uint32_t c = 0; c < cap; ++c)
      if ((w[c] >> 32) == epoch_)
        fn(static_cast<graph::VertexId>(w[c]));
  }

  /// Raw cell image of table `t` — kInvalidVertex in empty cells, exactly
  /// what VertexTable::cells() held (tests compare these across layouts).
  std::vector<graph::VertexId> cells(std::uint32_t t) const {
    std::vector<graph::VertexId> out(capacity(t), graph::kInvalidVertex);
    const std::uint64_t* w = words_ + base(t);
    for (std::uint32_t c = 0; c < out.size(); ++c)
      if ((w[c] >> 32) == epoch_) out[c] = static_cast<graph::VertexId>(w[c]);
    return out;
  }

  /// Heap allocations the slab itself ever made (stable in steady state).
  std::uint64_t slab_allocations() const { return slab_allocations_; }
  std::size_t slab_words() const { return words_size_; }

 private:
  std::size_t base(std::uint32_t t) const {
    return uniform_ ? static_cast<std::size_t>(t) * stride_ : offset_[t];
  }
  void ensure_words(std::size_t total);
  void bump_epoch();

  std::unique_ptr<std::uint64_t[]> storage_;  // words_ + alignment slack
  std::uint64_t* words_ = nullptr;            // 64B-aligned view of storage_
  std::size_t words_size_ = 0;                // words in use this generation
  std::size_t words_cap_ = 0;                 // words allocated
  std::uint32_t epoch_ = 1;
  std::uint64_t tag_ = std::uint64_t{1} << 32;  // epoch_ << 32
  std::uint32_t num_ = 0;
  bool uniform_ = true;
  std::uint32_t ucap_ = 0;      // uniform mode: capacity
  std::size_t stride_ = 0;      // uniform mode: words per bucket
  std::vector<std::uint32_t> cap_;       // variable mode
  std::vector<std::size_t> offset_;      // variable mode, num_ + 1 entries
  std::vector<std::uint32_t> count_;
  std::vector<std::uint8_t> collided_;
  std::uint64_t slab_allocations_ = 0;
};

/// Lightweight const view of one slab table with VertexTable's read-side
/// interface — what ExpandEngine::table() hands to VOTE / LINK / tests.
class TableView {
 public:
  TableView(const TableSlab* slab, std::uint32_t t) : slab_(slab), t_(t) {}

  std::uint32_t capacity() const { return slab_->capacity(t_); }
  std::uint32_t count() const { return slab_->count(t_); }
  bool collided() const { return slab_->collided(t_); }
  bool contains_at(std::uint32_t cell, graph::VertexId w) const {
    return slab_->contains_at(t_, cell, w);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    slab_->for_each(t_, fn);
  }
  std::vector<graph::VertexId> items() const {
    std::vector<graph::VertexId> out;
    out.reserve(count());
    for_each([&](graph::VertexId w) { out.push_back(w); });
    return out;
  }
  std::vector<graph::VertexId> cells() const { return slab_->cells(t_); }

 private:
  const TableSlab* slab_;
  std::uint32_t t_;
};

}  // namespace logcc::core
