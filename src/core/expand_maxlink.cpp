#include "core/expand_maxlink.hpp"

#include <algorithm>
#include <atomic>

#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

namespace {

/// Packed (level, id) priority for the MAXLINK fetch-max: the CRCW
/// "highest-level parent wins, ties by id" resolution in one word.
inline std::uint64_t pack_level_id(std::uint32_t level, VertexId id) {
  return (static_cast<std::uint64_t>(level) << 32) | id;
}

}  // namespace

ExpandMaxlink::ExpandMaxlink(std::uint64_t n, std::vector<Arc> arcs,
                             std::vector<std::uint8_t> exists,
                             const ParamPolicy& policy, std::uint64_t seed,
                             RunStats& stats)
    : n_(n),
      arcs_(std::move(arcs)),
      exists_(std::move(exists)),
      forest_(n),
      level_(n, 0),
      budget_(n, 0),
      policy_(policy),
      seed_(seed),
      stats_(stats) {
  LOGCC_CHECK(exists_.size() == n_);
  const std::uint64_t b1 = policy_.budget_for_level(1);
  util::parallel_for(0, n_, [&](std::size_t v) {
    if (exists_[v]) {
      level_[v] = 1;
      budget_[v] = b1;
    }
  });
  stats_.total_block_words +=
      b1 * util::parallel_reduce(
               std::size_t{0}, n_, std::uint64_t{0},
               [&](std::size_t v) {
                 return static_cast<std::uint64_t>(exists_[v] ? 1 : 0);
               },
               [](std::uint64_t a, std::uint64_t b) { return a + b; });
  drop_loops(arcs_);
  dedup_arcs(arcs_);
}

void ExpandMaxlink::maxlink(int iterations, bool& parent_changed) {
  best_.resize(n_);
  for (int it = 0; it < iterations; ++it) {
    ++stats_.pram_steps;
    // Candidate = the neighbourhood parent with maximal (level, id); v's own
    // parent is always a candidate because v ∈ N(v). The packed fetch-max
    // realises the CRCW write resolution deterministically.
    util::parallel_for(0, n_, [&](std::size_t v) {
      const VertexId p = forest_.parent(static_cast<VertexId>(v));
      best_[v] = pack_level_id(level_[p], p);
    });
    auto relax = [&](const std::vector<Arc>& arcs) {
      util::parallel_for(0, arcs.size(), [&](std::size_t i) {
        const Arc& a = arcs[i];
        if (a.u == a.v) return;
        const VertexId pu = forest_.parent(a.u);
        const VertexId pv = forest_.parent(a.v);
        util::atomic_max(best_[a.u], pack_level_id(level_[pv], pv));
        util::atomic_max(best_[a.v], pack_level_id(level_[pu], pu));
      });
    };
    relax(arcs_);
    relax(added_);
    std::atomic<bool> changed{false};
    util::parallel_for(0, n_, [&](std::size_t v) {
      const VertexId cand = static_cast<VertexId>(best_[v]);
      if (level_[cand] > level_[v] &&
          cand != forest_.parent(static_cast<VertexId>(v))) {
        forest_.set_parent(static_cast<VertexId>(v), cand);
        changed.store(true, std::memory_order_relaxed);
      }
    });
    if (changed.load()) parent_changed = true;
  }
}

void ExpandMaxlink::alter_all() {
  ++stats_.pram_steps;
  // Set semantics: loops and duplicates carry no information. Both lists go
  // through the same parallel ALTER / pack / bucketed-dedup kernels.
  alter(arcs_, forest_);
  drop_loops(arcs_);
  dedup_arcs(arcs_);
  alter(added_, forest_);
  drop_loops(added_);
  dedup_arcs(added_);
}

void ExpandMaxlink::mark_endpoints(std::vector<std::uint8_t>& flags) const {
  flags.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) { flags[v] = 0; });
  auto mark = [&](const std::vector<Arc>& arcs) {
    util::parallel_for(0, arcs.size(), [&](std::size_t i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) return;
      util::relaxed_store(flags[a.u], std::uint8_t{1});
      util::relaxed_store(flags[a.v], std::uint8_t{1});
    });
  };
  mark(arcs_);
  mark(added_);
}

std::uint64_t ExpandMaxlink::tally_raises(
    const std::vector<std::uint8_t>& flags) {
  const std::uint32_t max_new = util::parallel_reduce(
      std::size_t{0}, n_, std::uint32_t{0},
      [&](std::size_t v) { return flags[v] ? level_[v] : 0u; },
      [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
  if (max_new == 0) return 0;  // raised levels are >= 2, so 0 means none
  // Per-level tallies in one blocked histogram; bin 0 collects the
  // non-raised vertices and is discarded.
  const std::vector<std::uint64_t> counts = util::parallel_histogram(
      n_, max_new + 1,
      [&](std::size_t v) -> std::size_t { return flags[v] ? level_[v] : 0; });
  std::uint64_t raises = 0;
  if (stats_.level_histogram.size() <= max_new)
    stats_.level_histogram.resize(max_new + 1, 0);
  for (std::uint32_t lvl = 1; lvl <= max_new; ++lvl) {
    stats_.level_histogram[lvl] += counts[lvl];
    raises += counts[lvl];
  }
  stats_.level_raises += raises;
  stats_.max_level = std::max(stats_.max_level, max_new);
  return raises;
}

bool ExpandMaxlink::round() {
  ++round_;
  const std::uint64_t collisions_before = stats_.hash_collisions;
  const std::uint64_t raises_before = stats_.level_raises;
  const util::PairwiseHash h =
      util::PairwiseHash::from_seed(seed_, 0x4000 + round_);

  bool parent_changed = false;
  bool level_changed = false;

  // ---- Step (1): MAXLINK; ALTER.
  maxlink(static_cast<int>(policy_.maxlink_iterations), parent_changed);
  alter_all();

  // Active roots: roots that still have a non-loop incident edge. Inactive
  // roots are finished with their component's contraction; exempting them
  // from the random raise is what lets the break condition fire (their
  // levels would otherwise churn forever without making progress).
  mark_endpoints(active_);

  // ---- Step (2): random pre-emptive level raises. Counter-based coins —
  // mix64(seed, round, v) — so every root's draw is its own function of
  // (seed, round) and the step parallelises thread-count invariantly.
  ++stats_.pram_steps;
  raised_.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    raised_[v] = 0;
    if (!exists_[v] || !active_[v] ||
        !forest_.is_root(static_cast<VertexId>(v)))
      return;
    const double coin =
        util::counter_uniform(util::mix64(seed_, 0x3000 + round_, v));
    if (coin < policy_.raise_probability(budget_[v])) {
      ++level_[v];
      raised_[v] = 1;
    }
  });
  if (tally_raises(raised_) > 0) level_changed = true;

  // ---- Step (3): hash equal-budget root neighbours into fresh tables —
  // one epoch-reset slab generation with per-root capacities (non-roots get
  // no bucket at all).
  ++stats_.pram_steps;
  coll_.resize(n_);
  auto is_root_vertex = [&](VertexId v) {
    return exists_[v] && forest_.is_root(v);
  };
  caps_.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    caps_[v] = is_root_vertex(static_cast<VertexId>(v))
                   ? policy_.table_capacity(budget_[v])
                   : 0;
  });
  table_.reset_variable(caps_);
  // Bucket-partitioned fill: emit (root, neighbour) items in arc order,
  // group them per root, then every root replays its own inserts — self
  // first (v ∈ N(v): without it, Step (5) would keep "discovering" v
  // through a neighbour's table and the closure test of the break
  // condition could never settle), then neighbours in arc order.
  const std::size_t na = arcs_.size();
  auto arc_at = [&](std::size_t i) -> const Arc& {
    return i < na ? arcs_[i] : added_[i - na];
  };
  auto eligible = [&](VertexId v, VertexId w) {
    return is_root_vertex(v) && is_root_vertex(w) && budget_[w] == budget_[v];
  };
  util::parallel_emit(
      na + added_.size(), fill_items_,
      [&](std::size_t i) -> std::size_t {
        const Arc& a = arc_at(i);
        if (a.u == a.v) return 0;
        return (eligible(a.u, a.v) ? 1 : 0) + (eligible(a.v, a.u) ? 1 : 0);
      },
      [&](std::size_t i, std::pair<VertexId, VertexId>* dst) {
        const Arc& a = arc_at(i);
        if (eligible(a.u, a.v)) *dst++ = {a.u, a.v};
        if (eligible(a.v, a.u)) *dst = {a.v, a.u};
      });
  util::ScratchBuffer<std::size_t> root_begin(n_ + 1);
  util::parallel_group_by_into(
      fill_items_, fill_grouped_, n_,
      [](const auto& it) { return static_cast<std::size_t>(it.first); },
      root_begin.span());
  util::parallel_for(0, n_, [&](std::size_t v) {
    coll_[v] = 0;
    const std::uint32_t cap = caps_[v];
    if (cap == 0) return;
    const auto t = static_cast<std::uint32_t>(v);
    if (table_.insert_at(t, static_cast<std::uint32_t>(h(v, cap)),
                         static_cast<VertexId>(v)) ==
        TableSlab::Insert::kCollision)
      ++coll_[v];
    for (std::size_t i = root_begin[v]; i < root_begin[v + 1]; ++i) {
      const VertexId w = fill_grouped_[i].second;
      if (table_.insert_at(t, static_cast<std::uint32_t>(h(w, cap)), w) ==
          TableSlab::Insert::kCollision)
        ++coll_[v];
    }
  });

  // ---- Step (4): collisions mark dormant; dormancy propagates one hop.
  ++stats_.pram_steps;
  dormant_.resize(n_);
  dormant0_.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    dormant0_[v] = table_.collided(static_cast<std::uint32_t>(v)) ? 1 : 0;
    dormant_[v] = dormant0_[v];
  });
  util::parallel_for(0, n_, [&](std::size_t v) {
    if (caps_[v] == 0) return;
    table_.for_each(static_cast<std::uint32_t>(v), [&](VertexId w) {
      if (dormant0_[w]) dormant_[v] = 1;
    });
  });

  // ---- Step (5): one doubling step H(v) ∪= H(w), w ∈ H(v). Parallel over
  // roots: v reads only the flat slab snapshot (one word copy, no per-root
  // item vectors) and writes only its own table/flags.
  ++stats_.pram_steps;
  closure_.resize(n_);
  table_.snapshot_into(snap_words_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    closure_[v] = 0;
    if (!is_root_vertex(static_cast<VertexId>(v))) return;
    const std::uint32_t cap = caps_[v];
    if (cap == 0) return;
    const auto t = static_cast<std::uint32_t>(v);
    table_.for_each_in(snap_words_, t, [&](VertexId w) {
      table_.for_each_in(snap_words_, w, [&](VertexId u) {
        auto r = table_.insert_at(t, static_cast<std::uint32_t>(h(u, cap)), u);
        if (r == TableSlab::Insert::kNew) {
          closure_[v] = 1;
        } else if (r == TableSlab::Insert::kCollision) {
          ++coll_[v];
          dormant_[v] = 1;
        }
      });
    });
  });
  stats_.hash_collisions += util::parallel_reduce(
      std::size_t{0}, n_, std::uint64_t{0},
      [&](std::size_t v) { return coll_[v]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  const bool closure_new = util::parallel_reduce(
      std::size_t{0}, n_, false,
      [&](std::size_t v) { return closure_[v] != 0; },
      [](bool a, bool b) { return a || b; });

  // Table contents become added edges of the current graph (every root
  // holds itself, so count() - 1 non-self items each).
  util::parallel_emit(
      n_, emit_tmp_,
      [&](std::size_t v) -> std::size_t {
        return caps_[v] == 0
                   ? 0
                   : table_.count(static_cast<std::uint32_t>(v)) - 1;
      },
      [&](std::size_t v, Arc* dst) {
        table_.for_each(static_cast<std::uint32_t>(v), [&](VertexId w) {
          if (w != static_cast<VertexId>(v))
            *dst++ = {static_cast<VertexId>(v), w, 0};
        });
      });
  added_.insert(added_.end(), emit_tmp_.begin(), emit_tmp_.end());

  // ---- Step (6): MAXLINK; SHORTCUT; ALTER.
  maxlink(static_cast<int>(policy_.maxlink_iterations), parent_changed);
  if (forest_.shortcut()) parent_changed = true;
  ++stats_.pram_steps;
  alter_all();

  // ---- Step (7): forced raises for dormant roots that skipped Step (2).
  ++stats_.pram_steps;
  forced_.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    forced_[v] = 0;
    if (!exists_[v] || !forest_.is_root(static_cast<VertexId>(v))) return;
    if (dormant_[v] && !raised_[v]) {
      ++level_[v];
      forced_[v] = 1;
    }
  });
  if (tally_raises(forced_) > 0) level_changed = true;

  // ---- Step (8): reassign blocks; the space ledger moves to reduces.
  ++stats_.pram_steps;
  new_words_.resize(n_);
  util::parallel_for(0, n_, [&](std::size_t v) {
    new_words_[v] = 0;
    if (!exists_[v] || !forest_.is_root(static_cast<VertexId>(v))) return;
    const std::uint64_t nb = policy_.budget_for_level(level_[v]);
    if (nb != budget_[v]) {
      budget_[v] = nb;
      new_words_[v] = nb;
    }
  });
  stats_.total_block_words += util::parallel_reduce(
      std::size_t{0}, n_, std::uint64_t{0},
      [&](std::size_t v) { return new_words_[v]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  const std::uint64_t block_words_in_use = util::parallel_reduce(
      std::size_t{0}, n_, std::uint64_t{0},
      [&](std::size_t v) { return exists_[v] ? budget_[v] : 0; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  // Both lists hold 3-word Arcs now that added_ reuses the arc kernels.
  stats_.peak_space_words =
      std::max(stats_.peak_space_words,
               arcs_.size() * 3 + added_.size() * 3 + block_words_in_use);
  ++stats_.rounds;

  if (trace_enabled_) {
    RoundTrace t;
    t.round = round_;
    mark_endpoints(active_);
    t.roots = util::parallel_reduce(
        std::size_t{0}, n_, std::uint64_t{0},
        [&](std::size_t v) {
          return static_cast<std::uint64_t>(
              exists_[v] && forest_.is_root(static_cast<VertexId>(v)));
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    t.active_roots = util::parallel_reduce(
        std::size_t{0}, n_, std::uint64_t{0},
        [&](std::size_t v) {
          return static_cast<std::uint64_t>(
              exists_[v] && forest_.is_root(static_cast<VertexId>(v)) &&
              active_[v]);
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    t.max_level = util::parallel_reduce(
        std::size_t{0}, n_, std::uint32_t{0},
        [&](std::size_t v) {
          return exists_[v] && forest_.is_root(static_cast<VertexId>(v))
                     ? level_[v]
                     : 0u;
        },
        [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
    t.arcs = arcs_.size();
    t.added_edges = added_.size();
    t.collisions = stats_.hash_collisions - collisions_before;
    t.raises = stats_.level_raises - raises_before;
    trace_.push_back(t);
  }

  return !parent_changed && !level_changed && !closure_new;
}

std::vector<Arc> ExpandMaxlink::remaining_arcs() const {
  std::vector<Arc> out = arcs_;
  out.insert(out.end(), added_.begin(), added_.end());
  drop_loops(out);
  dedup_arcs(out);
  return out;
}

}  // namespace logcc::core
