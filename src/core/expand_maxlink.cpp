#include "core/expand_maxlink.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"

namespace logcc::core {

ExpandMaxlink::ExpandMaxlink(std::uint64_t n, std::vector<Arc> arcs,
                             std::vector<std::uint8_t> exists,
                             const ParamPolicy& policy, std::uint64_t seed,
                             RunStats& stats)
    : n_(n),
      arcs_(std::move(arcs)),
      exists_(std::move(exists)),
      forest_(n),
      level_(n, 0),
      budget_(n, 0),
      policy_(policy),
      seed_(seed),
      stats_(stats) {
  LOGCC_CHECK(exists_.size() == n_);
  const std::uint64_t b1 = policy_.budget_for_level(1);
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (exists_[v]) {
      level_[v] = 1;
      budget_[v] = b1;
      stats_.total_block_words += b1;
    }
  }
  drop_loops(arcs_);
  dedup_arcs(arcs_);
}

template <typename Fn>
void ExpandMaxlink::for_each_neighbor_arc(Fn&& fn) const {
  for (const Arc& a : arcs_) {
    if (a.u == a.v) continue;
    fn(a.u, a.v);
    fn(a.v, a.u);
  }
  for (const graph::Edge& e : added_) {
    if (e.u == e.v) continue;
    fn(e.u, e.v);
    fn(e.v, e.u);
  }
}

void ExpandMaxlink::maxlink(int iterations, bool& parent_changed) {
  for (int it = 0; it < iterations; ++it) {
    ++stats_.pram_steps;
    // Candidate = the neighbourhood parent with maximal (level, id); v's own
    // parent is always a candidate because v ∈ N(v).
    std::vector<VertexId> best(n_);
    for (std::uint64_t v = 0; v < n_; ++v)
      best[v] = forest_.parent(static_cast<VertexId>(v));
    auto better = [&](VertexId a, VertexId b) {
      // true if a beats b by (level, id).
      return level_[a] != level_[b] ? level_[a] > level_[b] : a > b;
    };
    for_each_neighbor_arc([&](VertexId v, VertexId w) {
      VertexId cand = forest_.parent(w);
      if (better(cand, best[v])) best[v] = cand;
    });
    for (std::uint64_t v = 0; v < n_; ++v) {
      if (level_[best[v]] > level_[v] &&
          best[v] != forest_.parent(static_cast<VertexId>(v))) {
        forest_.set_parent(static_cast<VertexId>(v), best[v]);
        parent_changed = true;
      }
    }
  }
}

void ExpandMaxlink::alter_all() {
  ++stats_.pram_steps;
  alter(arcs_, forest_);
  for (graph::Edge& e : added_) {
    e.u = forest_.parent(e.u);
    e.v = forest_.parent(e.v);
  }
  // Set semantics: loops and duplicates carry no information.
  drop_loops(arcs_);
  dedup_arcs(arcs_);
  std::erase_if(added_, [](const graph::Edge& e) { return e.u == e.v; });
  for (graph::Edge& e : added_)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(added_.begin(), added_.end(), [](const auto& a, const auto& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  added_.erase(std::unique(added_.begin(), added_.end()), added_.end());
}

bool ExpandMaxlink::round() {
  ++round_;
  const std::uint64_t collisions_before = stats_.hash_collisions;
  const std::uint64_t raises_before = stats_.level_raises;
  util::Xoshiro256 rng(util::mix64(seed_, 0x3000 + round_));
  const util::PairwiseHash h =
      util::PairwiseHash::from_seed(seed_, 0x4000 + round_);

  bool parent_changed = false;
  bool level_changed = false;
  bool closure_new = false;

  // ---- Step (1): MAXLINK; ALTER.
  maxlink(static_cast<int>(policy_.maxlink_iterations), parent_changed);
  alter_all();

  // Active roots: roots that still have a non-loop incident edge. Inactive
  // roots are finished with their component's contraction; exempting them
  // from the random raise is what lets the break condition fire (their
  // levels would otherwise churn forever without making progress).
  std::vector<std::uint8_t> active(n_, 0);
  for_each_neighbor_arc([&](VertexId v, VertexId) { active[v] = 1; });

  // ---- Step (2): random pre-emptive level raises.
  std::vector<std::uint8_t> raised(n_, 0);
  ++stats_.pram_steps;
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (!exists_[v] || !active[v] ||
        !forest_.is_root(static_cast<VertexId>(v)))
      continue;
    if (rng.bernoulli(policy_.raise_probability(budget_[v]))) {
      ++level_[v];
      raised[v] = 1;
      level_changed = true;
      ++stats_.level_raises;
      stats_.max_level = std::max(stats_.max_level, level_[v]);
      stats_.bump_level_histogram(level_[v]);
    }
  }

  // ---- Step (3): hash equal-budget root neighbours into fresh tables.
  ++stats_.pram_steps;
  std::vector<VertexTable> table(n_);
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (exists_[v] && forest_.is_root(static_cast<VertexId>(v)))
      table[v].reset(policy_.table_capacity(budget_[v]));
  }
  auto is_root_vertex = [&](VertexId v) {
    return exists_[v] && forest_.is_root(v);
  };
  // v ∈ N(v): every root hashes itself (without this, Step (5) would keep
  // "discovering" v through a neighbour's table and the closure test of the
  // break condition could never settle).
  for (std::uint64_t v = 0; v < n_; ++v) {
    VertexTable& t = table[v];
    if (t.capacity() == 0) continue;
    if (t.insert_at(static_cast<std::uint32_t>(h(v, t.capacity())),
                    static_cast<VertexId>(v)) ==
        VertexTable::Insert::kCollision)
      ++stats_.hash_collisions;
  }
  for_each_neighbor_arc([&](VertexId v, VertexId w) {
    if (!is_root_vertex(v) || !is_root_vertex(w)) return;
    if (budget_[w] != budget_[v]) return;
    VertexTable& t = table[v];
    if (t.insert_at(static_cast<std::uint32_t>(h(w, t.capacity())), w) ==
        VertexTable::Insert::kCollision)
      ++stats_.hash_collisions;
  });

  // ---- Step (4): collisions mark dormant; dormancy propagates one hop.
  ++stats_.pram_steps;
  std::vector<std::uint8_t> dormant(n_, 0);
  for (std::uint64_t v = 0; v < n_; ++v)
    if (table[v].collided()) dormant[v] = 1;
  std::vector<std::uint8_t> dormant0 = dormant;
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (table[v].capacity() == 0) continue;
    table[v].for_each([&](VertexId w) {
      if (dormant0[w]) dormant[v] = 1;
    });
  }

  // ---- Step (5): one doubling step H(v) ∪= H(w), w ∈ H(v).
  ++stats_.pram_steps;
  {
    std::vector<std::vector<VertexId>> snapshot(n_);
    for (std::uint64_t v = 0; v < n_; ++v)
      if (table[v].count() > 0) snapshot[v] = table[v].items();
    for (std::uint64_t v = 0; v < n_; ++v) {
      if (!is_root_vertex(static_cast<VertexId>(v))) continue;
      VertexTable& t = table[v];
      if (t.capacity() == 0) continue;
      for (VertexId w : snapshot[v]) {
        for (VertexId u : snapshot[w]) {
          auto r = t.insert_at(static_cast<std::uint32_t>(h(u, t.capacity())), u);
          if (r == VertexTable::Insert::kNew) {
            closure_new = true;
          } else if (r == VertexTable::Insert::kCollision) {
            ++stats_.hash_collisions;
            dormant[v] = 1;
          }
        }
      }
    }
  }

  // Table contents become added edges of the current graph.
  for (std::uint64_t v = 0; v < n_; ++v) {
    table[v].for_each([&](VertexId w) {
      if (w != static_cast<VertexId>(v))
        added_.push_back({static_cast<VertexId>(v), w});
    });
  }

  // ---- Step (6): MAXLINK; SHORTCUT; ALTER.
  maxlink(static_cast<int>(policy_.maxlink_iterations), parent_changed);
  if (forest_.shortcut()) parent_changed = true;
  ++stats_.pram_steps;
  alter_all();

  // ---- Step (7): forced raises for dormant roots that skipped Step (2).
  ++stats_.pram_steps;
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (!exists_[v] || !forest_.is_root(static_cast<VertexId>(v))) continue;
    if (dormant[v] && !raised[v]) {
      ++level_[v];
      level_changed = true;
      ++stats_.level_raises;
      stats_.max_level = std::max(stats_.max_level, level_[v]);
      stats_.bump_level_histogram(level_[v]);
    }
  }

  // ---- Step (8): reassign blocks.
  ++stats_.pram_steps;
  std::uint64_t block_words_in_use = 0;
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (!exists_[v]) continue;
    if (forest_.is_root(static_cast<VertexId>(v))) {
      std::uint64_t nb = policy_.budget_for_level(level_[v]);
      if (nb != budget_[v]) {
        budget_[v] = nb;
        stats_.total_block_words += nb;
      }
    }
    block_words_in_use += budget_[v];
  }
  stats_.peak_space_words =
      std::max(stats_.peak_space_words,
               arcs_.size() * 3 + added_.size() * 2 + block_words_in_use);
  ++stats_.rounds;

  if (trace_enabled_) {
    RoundTrace t;
    t.round = round_;
    std::vector<std::uint8_t> has_edge(n_, 0);
    for_each_neighbor_arc([&](VertexId v, VertexId) { has_edge[v] = 1; });
    for (std::uint64_t v = 0; v < n_; ++v) {
      if (!exists_[v]) continue;
      if (forest_.is_root(static_cast<VertexId>(v))) {
        ++t.roots;
        if (has_edge[v]) ++t.active_roots;
        t.max_level = std::max(t.max_level, level_[v]);
      }
    }
    t.arcs = arcs_.size();
    t.added_edges = added_.size();
    t.collisions = stats_.hash_collisions - collisions_before;
    t.raises = stats_.level_raises - raises_before;
    trace_.push_back(t);
  }

  return !parent_changed && !level_changed && !closure_new;
}

std::vector<Arc> ExpandMaxlink::remaining_arcs() const {
  std::vector<Arc> out = arcs_;
  for (const graph::Edge& e : added_) out.push_back({e.u, e.v, 0});
  drop_loops(out);
  dedup_arcs(out);
  return out;
}

}  // namespace logcc::core
