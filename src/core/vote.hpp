// VOTE (§B.4): leader selection after an EXPAND.
//
// A vertex that stayed live holds its entire component in H(u) (Lemma B.7),
// so the component's minimum id becomes the unique leader deterministically.
// A dormant vertex self-elects with probability b^{-2/3} — few leaders, but
// (by Lemma B.13) a dormant vertex has |H(u)| >= b w.h.p., so a leader lands
// in its table with constant probability, and the ongoing count falls by a
// b^{Ω(1)} factor per phase.
//
// Implemented as one fused parallel map: each slot scans its own table or
// draws a counter-based coin (mix64(seed, stream, v)), so the leader vector
// is bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/expand.hpp"
#include "core/metrics.hpp"

namespace logcc::core {

struct VoteParams {
  /// Leader probability for dormant vertices (= b^{-2/3}).
  double dormant_leader_prob = 0.5;
  std::uint64_t seed = 1;
};

/// Returns per-slot leader flags (1 = leader).
std::vector<std::uint8_t> vote(const ExpandEngine& expand,
                               const VoteParams& params, RunStats& stats);

/// Out-parameter form: `leader` is resized to the slot count and fully
/// overwritten. Phase loops hoist it so steady-state phases reuse its
/// capacity instead of allocating (see core/round_arena.hpp).
void vote(const ExpandEngine& expand, const VoteParams& params,
          RunStats& stats, std::vector<std::uint8_t>& leader);

}  // namespace logcc::core
