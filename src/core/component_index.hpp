// ComponentIndex: the one connectivity-result vocabulary of the repo.
//
// Every entry point that answers "which component?" — the 9 batch
// algorithms behind logcc::connected_components, the incremental
// serve::ConnectivityEngine, and the bench certificate path — produces (or
// publishes) exactly this type: canonical min-id labels, per-component
// sizes, the component count, and an optional parent forest, all computed
// in one deterministic parallel pass.
//
// An index is an immutable *snapshot*: once built it is never mutated, so a
// std::shared_ptr<const ComponentIndex> can be handed to any number of
// query threads and swapped atomically between epochs (util/epoch.hpp) —
// readers keep a consistent view for as long as they hold the pointer,
// regardless of what the producer does next.
//
// Canonical form: labels[v] is the minimum vertex id in v's component;
// hence labels[r] == r exactly for component roots, labels[v] <= v
// everywhere, and two indexes over the same graph compare equal bit for
// bit. sizes() is indexed by root label (0 at non-roots), giving O(1)
// component_size(v) without a side lookup structure.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace logcc::core {

class ComponentIndex {
 public:
  ComponentIndex() = default;

  /// Builds from any labeling (equal label iff same component):
  /// canonicalizes to min-id form, then counts components and per-component
  /// sizes in one parallel pass. Deterministic for every thread count and
  /// backend.
  static ComponentIndex from_labels(std::vector<graph::VertexId> labels);

  /// Builds from labels already in canonical min-id form (what the
  /// algorithms' canonical_labels pass and the serve engine's flat forest
  /// produce), skipping re-canonicalization. Canonicity is LOGCC_CHECKed
  /// (labels[v] <= v and labels[labels[v]] == labels[v]).
  static ComponentIndex from_canonical_labels(
      std::vector<graph::VertexId> labels);

  std::uint64_t num_vertices() const { return labels_.size(); }
  std::uint64_t num_components() const { return num_components_; }

  /// Canonical component id (the minimum vertex id in v's component).
  graph::VertexId component_of(graph::VertexId v) const { return labels_[v]; }
  bool connected(graph::VertexId u, graph::VertexId v) const {
    return labels_[u] == labels_[v];
  }
  /// Number of vertices in v's component.
  std::uint64_t component_size(graph::VertexId v) const {
    return sizes_[labels_[v]];
  }

  /// Canonical min-id labels, one per vertex.
  const std::vector<graph::VertexId>& labels() const { return labels_; }
  /// Root-indexed sizes: sizes()[r] is the size of the component whose
  /// canonical label is r, and 0 at every non-root index.
  const std::vector<std::uint64_t>& sizes() const { return sizes_; }

  /// Optional parent forest (§2.1 labeled-digraph shape): parent pointers
  /// whose find_root agrees with labels(). Absent unless a producer
  /// attaches one (the serve engine can, for diagnostics).
  bool has_forest() const { return !forest_.empty(); }
  const std::vector<graph::VertexId>& forest() const { return forest_; }
  /// Attaches a parent forest; LOGCC_CHECKs that its roots match labels().
  void attach_forest(std::vector<graph::VertexId> forest);

  friend bool operator==(const ComponentIndex& a, const ComponentIndex& b) {
    // The forest is diagnostic metadata, not part of the partition value.
    return a.labels_ == b.labels_ && a.sizes_ == b.sizes_ &&
           a.num_components_ == b.num_components_;
  }

 private:
  /// Shared tail of the builders: labels already canonical; fills sizes
  /// and counts roots in one deterministic parallel pass.
  static ComponentIndex finish(std::vector<graph::VertexId> labels);

  std::vector<graph::VertexId> labels_;
  std::vector<std::uint64_t> sizes_;
  std::vector<graph::VertexId> forest_;  // empty == absent
  std::uint64_t num_components_ = 0;
};

}  // namespace logcc::core
