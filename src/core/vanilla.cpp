#include "core/vanilla.hpp"

#include "core/round_arena.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

namespace {

// Shared phase body; `mark` is null for plain Vanilla and receives
// (vertex, arc) for every winning MARK-EDGE in the SF variant.
template <typename MarkFn>
std::uint64_t run_phases(ParentForest& forest, std::vector<Arc>& arcs,
                         const VanillaOptions& opt, RunStats& stats,
                         MarkFn&& mark) {
  const std::uint64_t n = forest.size();
  constexpr std::uint32_t kNoArc = static_cast<std::uint32_t>(-1);
  std::vector<std::uint8_t> leader(n, 0);
  // v.e of §C: the arc index that realises v's link this phase.
  std::vector<std::uint32_t> chosen(n, kNoArc);

  std::uint64_t phases = 0;
  while (has_nonloop(arcs)) {
    if (opt.max_phases && phases >= opt.max_phases) break;
    util::scratch_arena_round_reset();
    ++phases;
    ++stats.phases;
    stats.pram_steps += 5;  // vote, mark, link, shortcut, alter

    // RANDOM-VOTE. Counter-based coins — mix64(seed, phase, v) — instead of
    // a sequential RNG stream: every vertex's coin is its own function of
    // (seed, phase), so the step parallelises with no cross-processor order
    // and labels are bit-identical for every thread count.
    util::parallel_for(0, n, [&](std::size_t v) {
      leader[v] = util::mix64(opt.seed, phases, v) & 1;
    });

    // MARK-EDGE. The CRCW "arbitrary write wins" becomes a fetch-min on the
    // arc index: the lowest-indexed eligible arc wins deterministically.
    util::parallel_for(0, arcs.size(), [&](std::size_t i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) return;
      const std::uint32_t idx = static_cast<std::uint32_t>(i);
      // Both directions of the undirected arc.
      if (forest.is_root(a.u) && !leader[a.u] && leader[a.v])
        util::atomic_min(chosen[a.u], idx);
      if (forest.is_root(a.v) && !leader[a.v] && leader[a.u])
        util::atomic_min(chosen[a.v], idx);
    });
    // LINK. Each v writes only its own parent; an arc realises at most one
    // link (its endpoints need opposite coins), so `mark` targets are
    // distinct too.
    util::parallel_for(0, n, [&](std::size_t v) {
      std::uint32_t i = chosen[v];
      if (i == kNoArc) return;
      chosen[v] = kNoArc;
      const Arc& a = arcs[i];
      VertexId w = (a.u == static_cast<VertexId>(v)) ? a.v : a.u;
      forest.set_parent(static_cast<VertexId>(v), w);
      mark(static_cast<VertexId>(v), a);
    });
    // SHORTCUT (one step suffices: link trees have height <= 2).
    forest.shortcut();
    // ALTER + loop cleanup.
    alter(arcs, forest);
    drop_loops(arcs);
    if (opt.dedup) dedup_arcs(arcs);

    LOGCC_CHECK_MSG(stats.phases <= 100000, "Vanilla failed to converge");
  }
  return phases;
}

}  // namespace

std::uint64_t vanilla_phases(ParentForest& forest, std::vector<Arc>& arcs,
                             const VanillaOptions& opt, RunStats& stats) {
  return run_phases(forest, arcs, opt, stats, [](VertexId, const Arc&) {});
}

std::uint64_t vanilla_sf_phases(ParentForest& forest, std::vector<Arc>& arcs,
                                std::vector<std::uint8_t>& in_forest,
                                const VanillaOptions& opt, RunStats& stats) {
  return run_phases(forest, arcs, opt, stats,
                    [&](VertexId, const Arc& a) { in_forest[a.orig] = 1; });
}

VanillaCcResult vanilla_cc(const graph::ArcsInput& in, std::uint64_t seed) {
  VanillaCcResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  ParentForest forest(in.num_vertices());
  std::vector<Arc> arcs = arcs_from_input(in);
  drop_loops(arcs);
  VanillaOptions opt;
  opt.seed = seed;
  vanilla_phases(forest, arcs, opt, out.stats);
  forest.flatten();
  out.labels = forest.root_labels();
  return out;
}

VanillaCcResult vanilla_cc(const graph::EdgeList& el, std::uint64_t seed) {
  return vanilla_cc(graph::ArcsInput::from_edges(el), seed);
}

VanillaSfResult vanilla_sf(const graph::ArcsInput& in, std::uint64_t seed) {
  VanillaSfResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  ParentForest forest(in.num_vertices());
  std::vector<Arc> arcs = arcs_from_input(in);
  drop_loops(arcs);
  std::vector<std::uint8_t> in_forest(in.num_edges(), 0);
  VanillaOptions opt;
  opt.seed = seed;
  vanilla_sf_phases(forest, arcs, in_forest, opt, out.stats);
  for (std::uint64_t i = 0; i < in_forest.size(); ++i)
    if (in_forest[i]) out.forest_edges.push_back(i);
  return out;
}

VanillaSfResult vanilla_sf(const graph::EdgeList& el, std::uint64_t seed) {
  return vanilla_sf(graph::ArcsInput::from_edges(el), seed);
}

}  // namespace logcc::core
