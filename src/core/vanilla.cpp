#include "core/vanilla.hpp"

#include "util/check.hpp"
#include "util/random.hpp"

namespace logcc::core {

namespace {

// Shared phase body; `mark` is null for plain Vanilla and receives
// (vertex, arc) for every winning MARK-EDGE in the SF variant.
template <typename MarkFn>
std::uint64_t run_phases(ParentForest& forest, std::vector<Arc>& arcs,
                         const VanillaOptions& opt, RunStats& stats,
                         MarkFn&& mark) {
  const std::uint64_t n = forest.size();
  util::Xoshiro256 rng(opt.seed);
  std::vector<std::uint8_t> leader(n, 0);
  // v.e of §C: the arc index that realises v's link this phase.
  std::vector<std::uint32_t> chosen(n, static_cast<std::uint32_t>(-1));

  std::uint64_t phases = 0;
  while (has_nonloop(arcs)) {
    if (opt.max_phases && phases >= opt.max_phases) break;
    ++phases;
    ++stats.phases;
    stats.pram_steps += 5;  // vote, mark, link, shortcut, alter

    // RANDOM-VOTE.
    for (std::uint64_t v = 0; v < n; ++v)
      leader[v] = rng.bernoulli(0.5) ? 1 : 0;

    // MARK-EDGE (arbitrary write wins; the seeded sweep order is the
    // "arbitrary" resolution).
    for (std::uint32_t i = 0; i < arcs.size(); ++i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) continue;
      // Both directions of the undirected arc.
      if (forest.is_root(a.u) && !leader[a.u] && leader[a.v]) chosen[a.u] = i;
      if (forest.is_root(a.v) && !leader[a.v] && leader[a.u]) chosen[a.v] = i;
    }
    // LINK.
    for (std::uint64_t v = 0; v < n; ++v) {
      std::uint32_t i = chosen[v];
      if (i == static_cast<std::uint32_t>(-1)) continue;
      chosen[v] = static_cast<std::uint32_t>(-1);
      const Arc& a = arcs[i];
      VertexId w = (a.u == static_cast<VertexId>(v)) ? a.v : a.u;
      forest.set_parent(static_cast<VertexId>(v), w);
      mark(static_cast<VertexId>(v), a);
    }
    // SHORTCUT (one step suffices: link trees have height <= 2).
    forest.shortcut();
    // ALTER + loop cleanup.
    alter(arcs, forest);
    drop_loops(arcs);
    if (opt.dedup) dedup_arcs(arcs);

    LOGCC_CHECK_MSG(stats.phases <= 100000, "Vanilla failed to converge");
  }
  return phases;
}

}  // namespace

std::uint64_t vanilla_phases(ParentForest& forest, std::vector<Arc>& arcs,
                             const VanillaOptions& opt, RunStats& stats) {
  return run_phases(forest, arcs, opt, stats, [](VertexId, const Arc&) {});
}

std::uint64_t vanilla_sf_phases(ParentForest& forest, std::vector<Arc>& arcs,
                                std::vector<std::uint8_t>& in_forest,
                                const VanillaOptions& opt, RunStats& stats) {
  return run_phases(forest, arcs, opt, stats,
                    [&](VertexId, const Arc& a) { in_forest[a.orig] = 1; });
}

VanillaCcResult vanilla_cc(const graph::EdgeList& el, std::uint64_t seed) {
  VanillaCcResult out;
  ParentForest forest(el.n);
  std::vector<Arc> arcs = arcs_from_edges(el);
  drop_loops(arcs);
  VanillaOptions opt;
  opt.seed = seed;
  vanilla_phases(forest, arcs, opt, out.stats);
  forest.flatten();
  out.labels = forest.root_labels();
  return out;
}

VanillaSfResult vanilla_sf(const graph::EdgeList& el, std::uint64_t seed) {
  VanillaSfResult out;
  ParentForest forest(el.n);
  std::vector<Arc> arcs = arcs_from_edges(el);
  drop_loops(arcs);
  std::vector<std::uint8_t> in_forest(el.edges.size(), 0);
  VanillaOptions opt;
  opt.seed = seed;
  vanilla_sf_phases(forest, arcs, in_forest, opt, out.stats);
  for (std::uint64_t i = 0; i < in_forest.size(); ++i)
    if (in_forest[i]) out.forest_edges.push_back(i);
  return out;
}

}  // namespace logcc::core
