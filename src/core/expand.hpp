// The EXPAND procedure (§B.3): repeated neighbourhood doubling through
// per-vertex hash tables.
//
// Mechanics per phase:
//   1. ongoing vertices are hashed to blocks via h_B; a vertex that is not
//      the unique occupant of its block is *fully dormant*;
//   2. each block owner u gets a hash table H(u); round 0 hashes u and its
//      graph neighbours into H(u) (collision ⇒ dormant);
//   3. each subsequent round replaces H(u) by ∪_{v∈H(u)} H(v) (hashing via
//      h_V; collision or a dormant member ⇒ u dormant);
// so while u stays live and collision-free, H_j(u) = B(u, 2^j) (Lemma B.7):
// the ball of radius 2^j around u. The loop runs until no table grows and no
// status changes — O(log d) rounds.
//
// Dormancy never stops the table from being *used*; it stops the guarantee
// that the table equals the ball and signals VOTE to treat u pessimistically.
//
// `keep_history` retains H_j(u) and per-round liveness for every round j —
// required by the spanning forest's TREE-LINK (§C.3).
//
// Every step is data-parallel over util/scan's blocked primitives — block
// occupancy via a stable bucket partition, table seeding via a segmented
// emit grouped by owner slot, doubling rounds as a parallel map over slots
// with per-slot collision tallies — and all of it is thread-count
// invariant: the same input yields bit-identical tables, dormancy rounds
// and stats for every OMP_NUM_THREADS (tests/test_expand.cpp asserts it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/building_blocks.hpp"
#include "core/metrics.hpp"
#include "core/table_slab.hpp"
#include "util/hashing.hpp"

namespace logcc::core {

struct ExpandParams {
  std::uint64_t block_count = 1;   // number of h_B blocks (≈ m / δ^{2/3})
  std::uint32_t table_capacity = 4;  // |H(u)| (≈ δ^{1/3})
  std::uint64_t seed = 1;          // h_B, h_V derived deterministically
  std::uint32_t max_rounds = 64;   // safety cap on doubling rounds
  bool keep_history = false;       // retain H_j for TREE-LINK
};

/// Caller-hoisted scratch for the engine's parallel kernels. Phase loops
/// construct one ExpandEngine per phase; hoisting the scratch (like the
/// collect_ongoing scratch) avoids re-allocating the O(n) slot map, the
/// bucket-partition buffers, the table slab and the doubling-round state
/// every phase. `slot_of` must be all-kNoSlot on entry; the engine restores
/// it (touched entries only) on destruction.
struct ExpandScratch {
  std::vector<std::uint32_t> slot_of;  // n entries, kNoSlot except ongoing
  std::vector<std::pair<std::uint64_t, std::uint32_t>> block_keys;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> block_keys_tmp;
  std::vector<std::pair<std::uint32_t, VertexId>> fill_items;
  std::vector<std::pair<std::uint32_t, VertexId>> fill_items_grouped;
  std::vector<std::uint64_t> collisions;  // per-slot tallies
  TableSlab tables;                       // H(u) buckets, epoch-reset per phase
  std::vector<std::uint64_t> snapshot_words;  // per-round flat table snapshot
  std::vector<std::uint8_t> owns_block;
  std::vector<std::uint32_t> dormant_round;
  // Doubling-round flags (hoisted: rounds are the innermost hot loop).
  std::vector<std::uint8_t> changed, went_dormant, dormant_in;
  std::vector<std::uint8_t> changed_now, dormant_now;
};

class ExpandEngine {
 public:
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kNeverDormant = static_cast<std::uint32_t>(-1);

  /// `ongoing` lists the roots participating this phase; `arcs` are the
  /// current (altered) arcs — only those whose both endpoints are ongoing
  /// are used. `scratch`, when given, must outlive the engine and not be
  /// shared with a concurrently-live engine.
  ExpandEngine(std::uint64_t n, std::span<const VertexId> ongoing,
               std::span<const Arc> arcs, const ExpandParams& params,
               RunStats& stats, ExpandScratch* scratch = nullptr);
  ~ExpandEngine();
  ExpandEngine(const ExpandEngine&) = delete;
  ExpandEngine& operator=(const ExpandEngine&) = delete;

  /// Executes Steps (1)–(5); fills all result accessors below.
  void run();

  std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(ongoing_.size());
  }
  std::uint32_t slot_of(VertexId v) const { return scratch_->slot_of[v]; }
  VertexId vertex_of(std::uint32_t slot) const { return ongoing_[slot]; }

  bool owns_block(std::uint32_t slot) const {
    return scratch_->owns_block[slot] != 0;
  }
  bool fully_dormant(std::uint32_t slot) const { return !owns_block(slot); }
  /// Round at which the vertex became dormant; kNeverDormant if it stayed
  /// live throughout. Fully dormant vertices report round 0.
  std::uint32_t dormant_round(std::uint32_t slot) const {
    return scratch_->dormant_round[slot];
  }
  bool live_after(std::uint32_t slot) const {
    return dormant_round(slot) == kNeverDormant;
  }
  /// "v is live in round j of Step (5)" in the paper's sense.
  bool live_in_round(std::uint32_t slot, std::uint32_t j) const {
    return owns_block(slot) &&
           (dormant_round(slot) == kNeverDormant || dormant_round(slot) > j);
  }

  TableView table(std::uint32_t slot) const {
    return TableView(&scratch_->tables, slot);
  }

  /// Total doubling rounds executed (the paper's T).
  std::uint32_t rounds() const { return rounds_; }

  /// History: items of H_j(slot); valid when keep_history, for j in
  /// [0, rounds()].
  const std::vector<VertexId>& history(std::uint32_t j,
                                       std::uint32_t slot) const;

  const util::PairwiseHash& hv() const { return hv_; }
  std::uint32_t table_capacity() const { return params_.table_capacity; }

 private:
  void assign_blocks();
  void seed_tables();      // Steps (3) and (4)
  void doubling_rounds();  // Step (5)
  void mark_dormant(std::uint32_t slot, std::uint32_t round);
  void snapshot_history();
  void flush_collisions();  // scratch tallies -> stats_.hash_collisions

  std::uint64_t n_;
  std::vector<VertexId> ongoing_;
  std::span<const Arc> arcs_;
  ExpandParams params_;
  RunStats& stats_;

  util::PairwiseHash hb_, hv_;
  ExpandScratch own_scratch_;   // used when the caller passes none
  ExpandScratch* scratch_;      // tables/flags live here, hoisted per phase
  std::vector<std::vector<std::vector<VertexId>>> history_;  // [round][slot]
  std::uint32_t rounds_ = 0;
};

}  // namespace logcc::core
