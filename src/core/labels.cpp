#include "core/labels.hpp"

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"

namespace logcc::core {

bool ParentForest::shortcut() {
  // Fused pass: compute next[v] = v.p.p into the persistent scratch buffer
  // and fold the changed flag in the same sweep (the seed did two passes
  // plus a fresh allocation per call). Double-buffering keeps the step
  // synchronous — every read sees the pre-step pointers.
  const std::uint64_t n = parent_.size();
  scratch_.resize(n);
  const bool changed = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), false,
      [&](std::size_t v) {
        const VertexId next = parent_[parent_[v]];
        scratch_[v] = next;
        return next != parent_[v];
      },
      [](bool x, bool y) { return x || y; });
  parent_.swap(scratch_);
  return changed;
}

std::uint64_t ParentForest::flatten() {
  std::uint64_t steps = 0;
  while (shortcut()) ++steps;
  return steps + 1;  // the final no-op step is still a step
}

VertexId ParentForest::find_root(VertexId v) const {
  VertexId steps = 0;
  while (parent_[v] != v) {
    v = parent_[v];
    LOGCC_CHECK_MSG(++steps <= parent_.size(), "cycle in parent forest");
  }
  return v;
}

bool ParentForest::all_flat() const {
  for (std::uint64_t v = 0; v < parent_.size(); ++v)
    if (parent_[parent_[v]] != parent_[v]) return false;
  return true;
}

bool ParentForest::acyclic() const {
  // Iterative colouring walk: any vertex returning to an in-progress walk
  // without reaching a self-loop witnesses a nontrivial cycle.
  const std::uint64_t n = parent_.size();
  std::vector<std::uint8_t> state(n, 0);  // 0 unvisited, 1 on path, 2 done
  std::vector<VertexId> path;
  for (std::uint64_t s = 0; s < n; ++s) {
    if (state[s] != 0) continue;
    VertexId v = static_cast<VertexId>(s);
    path.clear();
    while (state[v] == 0) {
      state[v] = 1;
      path.push_back(v);
      VertexId p = parent_[v];
      if (p == v) break;  // root
      v = p;
    }
    if (state[v] == 1 && parent_[v] != v) return false;  // hit the open path
    for (VertexId u : path) state[u] = 2;
  }
  return true;
}

std::vector<VertexId> ParentForest::root_labels() const {
  std::vector<VertexId> out(parent_.size());
  util::parallel_for(0, parent_.size(), [&](std::size_t v) {
    out[v] = find_root(static_cast<VertexId>(v));
  });
  return out;
}

bool level_invariant_holds(const ParentForest& forest,
                           const std::vector<std::uint32_t>& level) {
  LOGCC_CHECK(forest.size() == level.size());
  for (std::uint64_t v = 0; v < forest.size(); ++v) {
    VertexId p = forest.parent(static_cast<VertexId>(v));
    if (p != static_cast<VertexId>(v) && level[v] >= level[p]) return false;
  }
  return true;
}

}  // namespace logcc::core
