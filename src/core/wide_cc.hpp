// Wide (64-bit index) execution path: Vanilla, union-find, and faster-cc
// entry points over graph::ArcsInput64 — what LOGCCSR2 datasets run on.
//
// Design: the narrow (uint32) core in building_blocks/vanilla stays the hot
// default; this module is a *faithful port* one width up, not a rewrite.
// Faithful means bit-compatible where the two paths overlap: the Vanilla
// port keeps the identical counter-based coins (mix64(seed, phase, v)), the
// identical lowest-arc-index MARK-EDGE tie-break, and a dedup whose
// survivor set AND order equal the narrow dedup for the same id values
// (same size cutoffs, same mix64 bucket map, (u,v)-sorted buckets) — so on
// any graph that fits both widths, wide labels equal narrow labels value
// for value (tests/test_differential_cc.cpp pins this across the corpus).
//
// faster-cc is not ported wholesale (its EXPAND/MAXLINK table machinery is
// deeply 32-bit); instead wide_faster_cc runs a narrowing bridge: inputs
// within the 32-bit caps delegate to core::faster_cc directly (bit-identical
// by construction), and genuinely wide inputs first contract with wide
// Vanilla phases until at most `narrow_threshold` vertices remain ongoing,
// rename the survivors into a dense 32-bit space, finish with
// core::faster_cc there, and map labels back through the wide forest.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

using graph::VertexId64;

struct WideArc {
  VertexId64 u = 0;
  VertexId64 v = 0;
  std::uint64_t orig = 0;  // index into the canonical edge order
  friend bool operator==(const WideArc&, const WideArc&) = default;
};

/// ParentForest one width up (see core/labels.hpp for the operations'
/// semantics; this port keeps the same synchronous double-buffered
/// shortcut).
class WideForest {
 public:
  WideForest() = default;
  explicit WideForest(std::uint64_t n) { reset(n); }

  void reset(std::uint64_t n) {
    parent_.resize(n);
    for (std::uint64_t v = 0; v < n; ++v) parent_[v] = v;
  }

  std::uint64_t size() const { return parent_.size(); }
  VertexId64 parent(VertexId64 v) const { return parent_[v]; }
  void set_parent(VertexId64 v, VertexId64 p) { parent_[v] = p; }
  bool is_root(VertexId64 v) const { return parent_[v] == v; }

  bool shortcut();
  std::uint64_t flatten();
  VertexId64 find_root(VertexId64 v) const;
  std::vector<VertexId64> root_labels() const;
  const std::vector<VertexId64>& raw() const { return parent_; }

 private:
  std::vector<VertexId64> parent_;
  std::vector<VertexId64> scratch_;
};

/// Canonical ingestion, one width up: one WideArc per undirected edge in
/// the canonical smaller-endpoint order (same sequence as the narrow
/// core::arcs_from_input for the same graph).
std::vector<WideArc> wide_arcs_from_input(const graph::ArcsInput64& in);

/// ALTER / loop-drop / dedup, ported with the narrow semantics (dedup keeps
/// the minimum-orig arc per undirected pair; same size cutoffs and bucket
/// map as the narrow path, so arc order — and every index-tie-break
/// downstream — matches).
void wide_alter(std::vector<WideArc>& arcs, const WideForest& forest);
std::uint64_t wide_drop_loops(std::vector<WideArc>& arcs);
void wide_dedup_arcs(std::vector<WideArc>& arcs);
bool wide_has_nonloop(const std::vector<WideArc>& arcs);

struct WideCcResult {
  std::vector<VertexId64> labels;
  RunStats stats;
};

/// Vanilla CC on the wide path. Identical phase structure, coins, and
/// tie-breaks as core::vanilla_cc — labels match the narrow run value for
/// value whenever the graph fits both widths.
WideCcResult wide_vanilla_cc(const graph::ArcsInput64& in,
                             std::uint64_t seed = 1);

/// Sequential union-find (path splitting + union by rank) on the wide
/// path, canonicalized to min-id labels — execution-independent, the
/// differential oracle for everything else here.
WideCcResult wide_union_find_cc(const graph::ArcsInput64& in);

struct WideFasterOptions {
  std::uint64_t seed = 1;
  /// Inputs whose n and edge count both fit this bound delegate straight
  /// to the narrow core::faster_cc. Lowering it (tests) forces the
  /// contract-then-delegate branch at small scale.
  std::uint64_t narrow_threshold = 0xFFFFFFFFull;
};

/// faster-cc on the wide path via the narrowing bridge (see file comment).
WideCcResult wide_faster_cc(const graph::ArcsInput64& in,
                            const WideFasterOptions& opt = {});

/// Rewrites labels in place to canonical min-id form (labels[v] = minimum
/// vertex id in v's component) — the form ComponentIndex publishes on the
/// narrow path, execution- and algorithm-independent.
void wide_canonicalize_labels(std::vector<VertexId64>& labels);

}  // namespace logcc::core
