#include "core/metrics.hpp"

// RunStats is a plain aggregate; this translation unit exists so the header
// stays cheap to include while leaving room for heavier reporting helpers.

namespace logcc::core {}  // namespace logcc::core
