// Theorem 2 (§C): Spanning Forest in O(log d · log log_{m/n} n) time.
//
//   FOREST-PREPARE; repeat { EXPAND; VOTE; TREE-LINK; TREE-SHORTCUT; ALTER }
//   until no edge exists other than loops.
//
// The connected-components phase cannot be reused verbatim because EXPAND
// adds edges that are not in the input graph. TREE-LINK (§C.3) instead
// computes, for every vertex u:
//   u.α — the largest radius such that B(u, α) contains no collision, no
//         leader, and no fully dormant vertex (via the retained per-round
//         tables H_j); and
//   u.β — the exact distance to the nearest leader when it is ≤ α + 1;
// and then links every u with β > 0 to a *graph* neighbour w with
// β(w) = β(u) − 1, marking the original input arc (Lemma C.6 guarantees w
// exists). The resulting trees are BFS trees of height ≤ d (Lemma C.8),
// flattened by TREE-SHORTCUT.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cc_theorem1.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

using SpanningForestParams = Theorem1Params;

struct SfResult {
  std::vector<std::uint64_t> forest_edges;  // canonical edge indices
  RunStats stats;
};

/// ArcsInput is the real entry point (CSR-backed inputs ingest without an
/// EdgeList); the EdgeList overload is a forwarding shim. forest_edges
/// index the input's canonical edge order (EdgeList order, or the
/// smaller-endpoint CSR order of graph::ArcsInput::for_each_edge).
SfResult theorem2_sf(const graph::ArcsInput& in,
                     const SpanningForestParams& params = {});
SfResult theorem2_sf(const graph::EdgeList& el,
                     const SpanningForestParams& params = {});

}  // namespace logcc::core
