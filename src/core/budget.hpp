// Levels and budgets (§3.1/§D.1) and the parameter policy.
//
// Paper policy: a level-ℓ root owns a block of size b_ℓ = b_1^{1.01^{ℓ-1}}
// with b_1 = max{m/n, log^c n}/log² n, c = 200, raise probability
// 10·log n / b^{0.1}, table size √b. These constants only separate for
// astronomically large n (log^200 n overflows everything real), so the
// library also ships a Practical policy with the same *structure* —
// double-exponential budget growth, polynomially-small raise probability —
// but exponents calibrated so the behaviour is observable at laptop scale.
// DESIGN.md §5 documents this substitution.
#pragma once

#include <cstdint>

#include "util/bitutil.hpp"

namespace logcc::core {

struct ParamPolicy {
  enum class Kind { kPaper, kPractical };

  Kind kind = Kind::kPractical;
  std::uint64_t b1 = 4;          // level-1 budget
  double growth = 1.5;           // b_{ℓ+1} = b_ℓ^growth
  double raise_coeff = 1.0;      // raise prob = raise_coeff / b^raise_exp
  double raise_exponent = 0.3;
  std::uint64_t budget_cap = 1ULL << 20;  // blocks never exceed this
  bool table_is_sqrt = false;    // paper: |H(v)| = sqrt(b); practical: b
  /// MAXLINK iterations per invocation. The paper uses exactly 2 (one is
  /// not enough for Lemma 3.21's two-hop argument); ablation A1 measures
  /// what 1 or 3 do.
  std::uint32_t maxlink_iterations = 2;

  /// Paper formulas (value-clamped at the cap so they are runnable).
  static ParamPolicy paper(std::uint64_t n, std::uint64_t m);

  /// Calibrated for observable behaviour at n up to ~1e7.
  static ParamPolicy practical(std::uint64_t n, std::uint64_t m);

  /// b_ℓ for ℓ >= 1, capped. Level 0 (non-root bookkeeping) returns 0.
  std::uint64_t budget_for_level(std::uint32_t level) const;

  /// Capacity of the table H(v) carved out of a block of size `budget`.
  std::uint32_t table_capacity(std::uint64_t budget) const;

  /// Step (2) probability for a root with budget b.
  double raise_probability(std::uint64_t budget) const;

  /// Smallest level whose budget reaches the cap — the practical analogue of
  /// the paper's maximal level L (Lemma 3.19/D.23).
  std::uint32_t saturation_level() const;
};

}  // namespace logcc::core
