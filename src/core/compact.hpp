// COMPACT (§D): PREPARE + renaming via approximate compaction.
//
// Why it exists (§1.2.2): Theorem 3 allocates different-sized processor
// blocks every round; doing that with approximate compaction costs
// O(log* n) per use unless the id space is first shrunk so that each array
// cell owns polylog(n) processors. COMPACT therefore (a) runs Vanilla
// phases until the ongoing-vertex count is small relative to m, then
// (b) renames the ongoing roots into a dense id space of length 2k via
// approximate compaction (Definition D.1) and hands out the initial blocks.
//
// The vector-based compaction here is the same randomized retry algorithm
// as pram::approximate_compaction (which runs on the step simulator); this
// one is the fast vehicle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/building_blocks.hpp"
#include "core/labels.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

/// Maps each flagged index one-to-one into [0, 2k) (k = number of flags) by
/// repeated pairwise-independent hashing; unflagged indices get kInvalid.
/// Returns nullopt only if `max_rounds` rounds cannot place everything.
std::optional<std::vector<std::uint32_t>> approximate_compaction_vec(
    const std::vector<std::uint8_t>& flags, std::uint64_t seed,
    std::uint32_t max_rounds = 48);

struct CompactParams {
  std::uint64_t seed = 1;
  /// PREPARE target: densify until m / #ongoing >= this (or solved).
  double target_density = 64.0;
  /// Sentinel = Θ(log log n) auto budget (see Theorem1Params).
  static constexpr std::uint64_t kAutoPreparePhases =
      static_cast<std::uint64_t>(-1);
  std::uint64_t prepare_max_phases = kAutoPreparePhases;
};

struct CompactResult {
  /// Parents in the original id space after PREPARE (flat trees).
  ParentForest outer;
  /// Renamed id space size (2k; ids without a vertex are ghosts).
  std::uint64_t n_compact = 0;
  std::vector<std::uint8_t> exists;          // [n_compact]
  std::vector<VertexId> orig_of;             // [n_compact] -> original id
  std::vector<std::uint32_t> renamed_of;     // [n] -> compact id or kInvalid
  std::vector<Arc> arcs;                     // compact id space, orig kept
  RunStats stats;

  static constexpr std::uint32_t kInvalid = static_cast<std::uint32_t>(-1);
};

/// Runs PREPARE + renaming on the input. The returned arcs connect compact
/// ids of the ongoing roots. The ArcsInput overload is the real entry
/// point; the EdgeList overload is a forwarding shim.
CompactResult compact(const graph::ArcsInput& in, const CompactParams& params);
CompactResult compact(const graph::EdgeList& el, const CompactParams& params);

}  // namespace logcc::core
