#include "core/component_index.hpp"

#include <atomic>

#include "graph/graph_algos.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"

namespace logcc::core {

using graph::VertexId;

// Size accumulation is commutative integer fetch-add, so the result is
// thread-count invariant; the root count folds in block order through
// parallel_reduce.
ComponentIndex ComponentIndex::finish(std::vector<VertexId> labels) {
  ComponentIndex out;
  const std::uint64_t n = labels.size();
  out.labels_ = std::move(labels);
  out.sizes_.assign(n, 0);
  const std::vector<VertexId>& l = out.labels_;
  util::parallel_for(0, n, [&](std::size_t v) {
    std::atomic_ref<std::uint64_t>(out.sizes_[l[v]])
        .fetch_add(1, std::memory_order_relaxed);
  });
  out.num_components_ = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), std::uint64_t{0},
      [&](std::size_t v) { return l[v] == v ? std::uint64_t{1} : 0; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return out;
}

ComponentIndex ComponentIndex::from_labels(std::vector<VertexId> labels) {
  return finish(graph::canonical_labels(labels));
}

ComponentIndex ComponentIndex::from_canonical_labels(
    std::vector<VertexId> labels) {
  const std::uint64_t n = labels.size();
  const bool canonical = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), true,
      [&](std::size_t v) {
        return labels[v] <= v && labels[labels[v]] == labels[v];
      },
      [](bool a, bool b) { return a && b; });
  LOGCC_CHECK_MSG(canonical,
                  "from_canonical_labels: labels are not min-id canonical");
  return finish(std::move(labels));
}

void ComponentIndex::attach_forest(std::vector<VertexId> forest) {
  LOGCC_CHECK_MSG(forest.size() == labels_.size(),
                  "attach_forest: size mismatch");
  // Every chain must terminate at the vertex's canonical label; pointer
  // chasing is bounded by n (the check below trips on a cycle first).
  const std::uint64_t n = forest.size();
  const bool consistent = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), true,
      [&](std::size_t v) {
        VertexId r = forest[v];
        std::uint64_t hops = 0;
        while (forest[r] != r) {
          r = forest[r];
          if (++hops > n) return false;  // cycle
        }
        return r == labels_[v];
      },
      [](bool a, bool b) { return a && b; });
  LOGCC_CHECK_MSG(consistent, "attach_forest: roots disagree with labels");
  forest_ = std::move(forest);
}

}  // namespace logcc::core
