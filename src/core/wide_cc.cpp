#include "core/wide_cc.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <unordered_map>

#include "core/faster_cc.hpp"
#include "core/round_arena.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

// ---------------------------------------------------------------- forest ---

bool WideForest::shortcut() {
  const std::uint64_t n = parent_.size();
  scratch_.resize(n);
  const bool changed = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), false,
      [&](std::size_t v) {
        const VertexId64 next = parent_[parent_[v]];
        scratch_[v] = next;
        return next != parent_[v];
      },
      [](bool x, bool y) { return x || y; });
  parent_.swap(scratch_);
  return changed;
}

std::uint64_t WideForest::flatten() {
  std::uint64_t steps = 0;
  while (shortcut()) ++steps;
  return steps + 1;
}

VertexId64 WideForest::find_root(VertexId64 v) const {
  std::uint64_t steps = 0;
  while (parent_[v] != v) {
    v = parent_[v];
    LOGCC_CHECK_MSG(++steps <= parent_.size(), "cycle in parent forest");
  }
  return v;
}

std::vector<VertexId64> WideForest::root_labels() const {
  std::vector<VertexId64> out(parent_.size());
  util::parallel_for(0, parent_.size(),
                     [&](std::size_t v) { out[v] = find_root(v); });
  return out;
}

// ------------------------------------------------------------- ingestion ---

std::vector<WideArc> wide_arcs_from_input(const graph::ArcsInput64& in) {
  if (!in.csr_backed()) {
    const auto edges = in.edge_span();
    const std::uint64_t n = in.num_vertices();
    std::vector<WideArc> arcs(edges.size());
    util::parallel_for(0, edges.size(), [&](std::size_t i) {
      const auto& e = edges[i];
      LOGCC_CHECK(e.u < n && e.v < n);
      arcs[i] = {e.u, e.v, static_cast<std::uint64_t>(i)};
    });
    return arcs;
  }
  // Canonical smaller-endpoint scatter — same sequence as the narrow
  // core::arcs_from_input (graph::csr_suffix is the one order definition).
  const graph::CsrView64& v = in.csr();
  std::vector<WideArc> arcs;
  util::parallel_emit<WideArc>(
      static_cast<std::size_t>(v.n), arcs,
      [&](std::size_t u) {
        return graph::csr_suffix(v, static_cast<VertexId64>(u)).size();
      },
      [&](std::size_t u, WideArc* dst) {
        std::uint64_t orig = static_cast<std::uint64_t>(dst - arcs.data());
        for (VertexId64 w : graph::csr_suffix(v, static_cast<VertexId64>(u)))
          *dst++ = {static_cast<VertexId64>(u), w, orig++};
      });
  return arcs;
}

// ------------------------------------------------------- building blocks ---

void wide_alter(std::vector<WideArc>& arcs, const WideForest& forest) {
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    WideArc& a = arcs[i];
    a.u = forest.parent(a.u);
    a.v = forest.parent(a.v);
  });
}

std::uint64_t wide_drop_loops(std::vector<WideArc>& arcs) {
  return util::parallel_pack(arcs,
                             [](const WideArc& a) { return a.u != a.v; });
}

bool wide_has_nonloop(const std::vector<WideArc>& arcs) {
  const std::size_t n = arcs.size();
  if (n < util::kSerialGrain) {
    for (const WideArc& a : arcs)
      if (a.u != a.v) return true;
    return false;
  }
  const std::size_t blocks = util::scan_block_count(n);
  std::atomic<bool> found{false};
  util::parallel_for_blocks(blocks, [&](std::size_t b) {
    if (found.load(std::memory_order_relaxed)) return;
    const std::size_t hi = util::detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = util::detail::block_begin(n, blocks, b); i < hi;
         ++i) {
      if (arcs[i].u != arcs[i].v) {
        found.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  return found.load();
}

namespace {

/// (u, v, orig) order — groups undirected duplicates, min orig first. Same
/// comparator as the narrow dedup, one width up.
bool wide_arc_less(const WideArc& a, const WideArc& b) {
  if (a.u != b.u) return a.u < b.u;
  if (a.v != b.v) return a.v < b.v;
  return a.orig < b.orig;
}

bool wide_arc_same_pair(const WideArc& a, const WideArc& b) {
  return a.u == b.u && a.v == b.v;
}

// The narrow dedup's size constants, verbatim: the path choice must depend
// on the input alone so wide and narrow runs of the same graph take the
// same route (and produce the same arc order — MARK-EDGE breaks ties on
// arc index).
constexpr std::size_t kDedupBucketCutoff = 4 * util::kSerialGrain;

std::size_t dedup_bucket_count(std::size_t n) {
  std::size_t buckets = 1;
  while (buckets < 256 && buckets * util::kSerialGrain < n) buckets <<= 1;
  return buckets;
}

/// In-bucket sort + keep-min-orig. The narrow path switches to a radix sort
/// on the packed 64-bit (u, v) key for large buckets; wide ids do not pack,
/// so every bucket takes the comparison sort — which produces the identical
/// (u, v)-sorted, min-orig-survivor output the radix path is specified
/// against, so the results still match the narrow run element for element.
std::size_t wide_dedup_bucket(WideArc* a, std::size_t n) {
  std::sort(a, a + n, wide_arc_less);
  return static_cast<std::size_t>(
      std::unique(a, a + n, wide_arc_same_pair) - a);
}

void wide_dedup_bucketed(std::vector<WideArc>& arcs) {
  const std::size_t n = arcs.size();
  const std::size_t buckets = dedup_bucket_count(n);
  const int shift = 64 - std::countr_zero(buckets);
  util::ScratchBuffer<WideArc> scattered(n);
  util::ScratchBuffer<std::size_t> bucket_begin(buckets + 1);
  util::parallel_bucket_partition_into(
      arcs.data(), n, scattered.data(), bucket_begin.span(), buckets,
      [shift](const WideArc& a) {
        return static_cast<std::size_t>(util::mix64(a.u) >> shift);
      });

  util::ScratchBuffer<std::size_t> kept(buckets);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    WideArc* lo = scattered.data() + bucket_begin[k];
    kept[k] = wide_dedup_bucket(lo, bucket_begin[k + 1] - bucket_begin[k]);
  });

  const std::size_t total = util::parallel_prefix_sum(kept.data(), buckets);
  arcs.resize(total);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    const WideArc* src = scattered.data() + bucket_begin[k];
    WideArc* dst = arcs.data() + kept[k];
    const std::size_t len = (k + 1 < buckets ? kept[k + 1] : total) - kept[k];
    std::copy(src, src + len, dst);
  });
}

}  // namespace

void wide_dedup_arcs(std::vector<WideArc>& arcs) {
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    WideArc& a = arcs[i];
    if (a.u > a.v) std::swap(a.u, a.v);
  });
  if (arcs.size() < kDedupBucketCutoff) {
    std::sort(arcs.begin(), arcs.end(), wide_arc_less);
    arcs.erase(
        std::unique(arcs.begin(), arcs.end(), wide_arc_same_pair),
        arcs.end());
  } else {
    wide_dedup_bucketed(arcs);
  }
}

// ----------------------------------------------------------- vanilla CC ---

namespace {

/// The narrow run_phases (core/vanilla.cpp) one width up: identical coins
/// (mix64(seed, phase, v) — the vertex's numeric value, so narrow and wide
/// flips agree), identical lowest-arc-index MARK-EDGE, identical phase
/// structure. `max_phases` = 0 runs to convergence.
std::uint64_t wide_run_phases(WideForest& forest, std::vector<WideArc>& arcs,
                              std::uint64_t seed, std::uint64_t max_phases,
                              RunStats& stats) {
  const std::uint64_t n = forest.size();
  constexpr std::uint64_t kNoArc = static_cast<std::uint64_t>(-1);
  std::vector<std::uint8_t> leader(n, 0);
  std::vector<std::uint64_t> chosen(n, kNoArc);

  std::uint64_t phases = 0;
  while (wide_has_nonloop(arcs)) {
    if (max_phases && phases >= max_phases) break;
    util::scratch_arena_round_reset();
    ++phases;
    ++stats.phases;
    stats.pram_steps += 5;  // vote, mark, link, shortcut, alter

    util::parallel_for(0, n, [&](std::size_t v) {
      leader[v] = util::mix64(seed, stats.phases, v) & 1;
    });
    util::parallel_for(0, arcs.size(), [&](std::size_t i) {
      const WideArc& a = arcs[i];
      if (a.u == a.v) return;
      const std::uint64_t idx = static_cast<std::uint64_t>(i);
      if (forest.is_root(a.u) && !leader[a.u] && leader[a.v])
        util::atomic_min(chosen[a.u], idx);
      if (forest.is_root(a.v) && !leader[a.v] && leader[a.u])
        util::atomic_min(chosen[a.v], idx);
    });
    util::parallel_for(0, n, [&](std::size_t v) {
      std::uint64_t i = chosen[v];
      if (i == kNoArc) return;
      chosen[v] = kNoArc;
      const WideArc& a = arcs[i];
      VertexId64 w = (a.u == static_cast<VertexId64>(v)) ? a.v : a.u;
      forest.set_parent(static_cast<VertexId64>(v), w);
    });
    forest.shortcut();
    wide_alter(arcs, forest);
    wide_drop_loops(arcs);
    wide_dedup_arcs(arcs);

    LOGCC_CHECK_MSG(stats.phases <= 100000, "wide Vanilla failed to converge");
  }
  return phases;
}

}  // namespace

WideCcResult wide_vanilla_cc(const graph::ArcsInput64& in,
                             std::uint64_t seed) {
  WideCcResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  WideForest forest(in.num_vertices());
  std::vector<WideArc> arcs = wide_arcs_from_input(in);
  wide_drop_loops(arcs);
  wide_run_phases(forest, arcs, seed, /*max_phases=*/0, out.stats);
  forest.flatten();
  out.labels = forest.root_labels();
  return out;
}

// ------------------------------------------------------------ union-find ---

WideCcResult wide_union_find_cc(const graph::ArcsInput64& in) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId64> parent(n);
  std::vector<std::uint8_t> rank(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](VertexId64 v) {
    while (parent[v] != v) {
      VertexId64 next = parent[v];
      parent[v] = parent[next];
      v = next;
    }
    return v;
  };
  in.for_each_edge([&](VertexId64 u, VertexId64 v, std::uint64_t) {
    VertexId64 ru = find(u), rv = find(v);
    if (ru == rv) return;
    if (rank[ru] < rank[rv]) std::swap(ru, rv);
    parent[rv] = ru;
    if (rank[ru] == rank[rv]) ++rank[ru];
  });

  WideCcResult out;
  out.stats.phases = 1;
  // Canonicalise to min-id labels — execution-independent, so these values
  // equal the narrow union_find_cc labels for any graph that fits both.
  std::vector<VertexId64> min_of(n);
  for (std::uint64_t v = 0; v < n; ++v) min_of[v] = v;
  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId64 r = find(v);
    min_of[r] = std::min(min_of[r], v);
  }
  out.labels.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) out.labels[v] = min_of[find(v)];
  return out;
}

void wide_canonicalize_labels(std::vector<VertexId64>& labels) {
  std::unordered_map<VertexId64, VertexId64> min_of;
  min_of.reserve(64);
  for (std::uint64_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] = min_of.try_emplace(labels[v], v);
    if (!inserted && v < it->second) it->second = v;
  }
  util::parallel_for(0, labels.size(),
                     [&](std::size_t v) { labels[v] = min_of.at(labels[v]); });
}

// -------------------------------------------------------------- faster-cc ---

namespace {

constexpr std::uint64_t kNarrowCap =
    std::numeric_limits<std::uint32_t>::max();

/// Delegate path: the whole input fits the 32-bit space, so run the real
/// narrow core::faster_cc on it (bit-identical to a native narrow run) and
/// widen the labels.
WideCcResult faster_delegate(const graph::ArcsInput64& in,
                             const WideFasterOptions& opt) {
  FasterCcParams params;
  params.seed = opt.seed;
  CcResult narrow;
  if (in.csr_backed()) {
    const graph::CsrView64& wv = in.csr();
    std::vector<graph::VertexId> adj(wv.num_arcs());
    util::parallel_for(0, adj.size(), [&](std::size_t i) {
      adj[i] = static_cast<graph::VertexId>(wv.adj[i]);
    });
    graph::CsrView nv;
    nv.n = wv.n;
    nv.edges = wv.edges;
    nv.offsets = wv.offsets;  // offsets are uint64 at both widths
    nv.adj = adj.data();
    narrow = faster_cc(graph::ArcsInput::from_csr(nv), params);
  } else {
    std::vector<graph::Edge> edges(in.edge_span().size());
    util::parallel_for(0, edges.size(), [&](std::size_t i) {
      const auto& e = in.edge_span()[i];
      edges[i] = {static_cast<graph::VertexId>(e.u),
                  static_cast<graph::VertexId>(e.v)};
    });
    narrow = faster_cc(
        graph::ArcsInput::from_edges(in.num_vertices(), edges), params);
  }
  WideCcResult out;
  out.stats = narrow.stats;
  out.labels.assign(narrow.labels.begin(), narrow.labels.end());
  return out;
}

}  // namespace

WideCcResult wide_faster_cc(const graph::ArcsInput64& in,
                            const WideFasterOptions& opt) {
  const std::uint64_t cap = std::min(opt.narrow_threshold, kNarrowCap);
  if (in.num_vertices() <= cap && in.num_edges() <= cap)
    return faster_delegate(in, opt);

  // Contract-then-delegate: wide Vanilla phases shrink the live arc list;
  // once it fits the 32-bit space the survivors are renamed dense and the
  // narrow faster-cc finishes the job.
  WideCcResult out;
  {
    RoundArena round_arena;
    RoundArena::Scope arena_scope(round_arena);
    WideForest forest(in.num_vertices());
    std::vector<WideArc> arcs = wide_arcs_from_input(in);
    wide_drop_loops(arcs);
    wide_dedup_arcs(arcs);
    // Each Vanilla phase removes (in expectation) a constant fraction of
    // live vertices, so this terminates in O(log n) phases; the cap/2 slack
    // keeps the renamed vertex count (<= 2 * arcs) within the 32-bit space.
    const std::uint64_t arc_target = std::max<std::uint64_t>(cap / 2, 1);
    while (wide_has_nonloop(arcs) && arcs.size() > arc_target) {
      wide_run_phases(forest, arcs, opt.seed, /*max_phases=*/1, out.stats);
    }
    forest.flatten();

    // Rename surviving endpoints in first-appearance order (deterministic:
    // the arc list order is execution-independent).
    std::unordered_map<VertexId64, graph::VertexId> rename;
    std::vector<VertexId64> orig_of;
    rename.reserve(arcs.size() * 2);
    graph::EdgeList contracted;
    contracted.edges.reserve(arcs.size());
    auto id_of = [&](VertexId64 v) {
      auto [it, inserted] =
          rename.try_emplace(v, static_cast<graph::VertexId>(orig_of.size()));
      if (inserted) orig_of.push_back(v);
      return it->second;
    };
    for (const WideArc& a : arcs) {
      if (a.u == a.v) continue;
      const graph::VertexId u = id_of(a.u);
      const graph::VertexId v = id_of(a.v);
      contracted.add(u, v);
    }
    contracted.n = orig_of.size();

    std::vector<graph::VertexId> narrow_labels;
    if (!contracted.edges.empty()) {
      FasterCcParams params;
      params.seed = opt.seed;
      CcResult fin = faster_cc(graph::ArcsInput::from_edges(contracted),
                               params);
      out.stats.phases += fin.stats.phases;
      out.stats.pram_steps += fin.stats.pram_steps;
      narrow_labels = std::move(fin.labels);
    }

    // Map back: a vertex whose root survived into the contracted graph
    // takes its component's faster-cc representative (translated to the
    // wide id space); a fully contracted component keeps its root.
    out.labels.resize(in.num_vertices());
    util::parallel_for(0, in.num_vertices(), [&](std::size_t v) {
      const VertexId64 r = forest.find_root(static_cast<VertexId64>(v));
      auto it = rename.find(r);
      out.labels[v] =
          it == rename.end() ? r : orig_of[narrow_labels[it->second]];
    });
  }
  return out;
}

}  // namespace logcc::core
