#include "core/faster_cc.hpp"

#include <algorithm>

#include "core/compact.hpp"
#include "core/expand_maxlink.hpp"
#include "core/round_arena.hpp"
#include "util/arena.hpp"
#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace logcc::core {

CcResult faster_cc(const graph::ArcsInput& in, const FasterCcParams& params) {
  CcResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  const std::uint64_t n = in.num_vertices();

  // ---- COMPACT: PREPARE + renaming.
  CompactParams cp;
  cp.seed = params.seed;
  cp.target_density = params.prepare_target_density;
  cp.prepare_max_phases = params.prepare_max_phases;
  CompactResult comp = compact(in, cp);
  out.stats.absorb(comp.stats);

  if (comp.n_compact == 0) {
    comp.outer.flatten();
    out.labels = comp.outer.root_labels();
    return out;
  }

  // ---- Main loop on the compact graph.
  const std::uint64_t m0 = std::max<std::uint64_t>(comp.arcs.size(), 1);
  ParamPolicy policy =
      params.policy_override.has_value()
          ? *params.policy_override
          : (params.policy == ParamPolicy::Kind::kPaper
                 ? ParamPolicy::paper(comp.n_compact, m0)
                 : ParamPolicy::practical(comp.n_compact, m0));

  ExpandMaxlink engine(comp.n_compact, comp.arcs, comp.exists, policy,
                       util::mix64(params.seed, 0xFA57), out.stats);

  std::uint64_t max_rounds = params.max_rounds;
  if (max_rounds == 0) {
    max_rounds = 4 * (util::ceil_log2(std::max<std::uint64_t>(n, 4)) +
                      static_cast<std::uint64_t>(util::loglog_density(n, m0))) +
                 32;
  }

  bool broke = false;
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    util::scratch_arena_round_reset();
    if (engine.round()) {
      broke = true;
      break;
    }
  }

  // ---- Postprocess: the remaining graph has diameter ≤ 1 and flat trees
  // (when `broke`); Theorem 1 finishes it in O(log log) time. If the round
  // budget ran out instead, Theorem-1's own guards (and ultimately the
  // deterministic finisher) still guarantee a correct answer.
  {
    // Re-establish the flat-trees/arcs-on-roots invariant the phase loop
    // expects (already true when `broke`, needed when the budget ran out).
    engine.forest().flatten();
    std::vector<Arc> rest = engine.remaining_arcs();
    alter(rest, engine.forest());
    drop_loops(rest);
    dedup_arcs(rest);
    Theorem1Params t1 = params.postprocess;
    t1.seed = util::mix64(params.seed, 0x7E0);
    if (!broke) out.stats.finisher_used = true;
    theorem1_phases(engine.forest(), rest, m0, t1, out.stats);
  }
  engine.forest().flatten();

  // ---- Map compact labels back to original ids (read-only over both
  // forests, so a data-parallel map).
  comp.outer.flatten();
  out.labels.resize(n);
  util::parallel_for(0, n, [&](std::size_t v) {
    VertexId r = comp.outer.find_root(static_cast<VertexId>(v));
    std::uint32_t cid = comp.renamed_of[r];
    if (cid == CompactResult::kInvalid) {
      out.labels[v] = r;
    } else {
      VertexId croot = engine.forest().find_root(static_cast<VertexId>(cid));
      VertexId orig = comp.orig_of[croot];
      LOGCC_CHECK(orig != graph::kInvalidVertex);
      out.labels[v] = orig;
    }
  });
  return out;
}

CcResult faster_cc(const graph::EdgeList& el, const FasterCcParams& params) {
  return faster_cc(graph::ArcsInput::from_edges(el), params);
}

}  // namespace logcc::core
