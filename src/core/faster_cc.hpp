// Theorem 3 (§3/§D): Faster Connected Components in
// O(log d + log log_{m/n} n) time.
//
//   COMPACT; repeat { EXPAND-MAXLINK } until the graph has diameter ≤ 1 and
//   all trees are flat; run the Theorem-1 algorithm on the remaining graph.
//
// The repeat loop halves the diameter every round (each root connects to
// everything within distance 2, Lemma 3.20/D.24) while the level/budget
// machinery keeps total space O(m); the additive log log term comes from
// COMPACT's PREPARE and the postprocess.
#pragma once

#include <cstdint>
#include <optional>

#include "core/budget.hpp"
#include "core/cc_theorem1.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

struct FasterCcParams {
  std::uint64_t seed = 1;
  ParamPolicy::Kind policy = ParamPolicy::Kind::kPractical;

  /// When set, used verbatim instead of deriving a policy from (n, m) —
  /// the ablation benches tweak growth/raise exponents/table shape here.
  std::optional<ParamPolicy> policy_override;

  /// COMPACT / PREPARE density target (the paper's log^c n).
  double prepare_target_density = 64.0;
  /// Sentinel = Θ(log log n) auto budget (see Theorem1Params).
  static constexpr std::uint64_t kAutoPreparePhases =
      static_cast<std::uint64_t>(-1);
  std::uint64_t prepare_max_phases = kAutoPreparePhases;

  /// 0 = automatic: C·(log2 n + log log n) + K rounds before the
  /// deterministic finisher takes over.
  std::uint64_t max_rounds = 0;

  /// Parameters for the Theorem-1 postprocess on the remaining graph.
  Theorem1Params postprocess;
};

/// ArcsInput is the real entry point (CSR-backed inputs ingest without an
/// EdgeList); the EdgeList overload is a forwarding shim.
CcResult faster_cc(const graph::ArcsInput& in,
                   const FasterCcParams& params = {});
CcResult faster_cc(const graph::EdgeList& el,
                   const FasterCcParams& params = {});

}  // namespace logcc::core
