// The paper's four building blocks (§2.2) over an arc list:
//
//   * ALTER        — replace every edge {v,w} by {v.p, w.p};
//   * direct LINK / parent LINK — applied inside the algorithm drivers;
//   * SHORTCUT     — lives on ParentForest (labels.hpp);
//   * expansion    — lives in hash_table/expand/expand_maxlink.
//
// Arcs carry the index of the original input edge they were altered from
// (`orig`), which is what lets the spanning-forest algorithm mark tree edges
// of the *input* graph (the ê/e distinction of §C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/labels.hpp"
#include "core/metrics.hpp"
#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

struct Arc {
  VertexId u = 0;
  VertexId v = 0;
  std::uint32_t orig = 0;  // index into the input EdgeList
  friend bool operator==(const Arc&, const Arc&) = default;
};

/// Builds the initial arc list from the input (one Arc per undirected edge;
/// algorithms enumerate both directions).
std::vector<Arc> arcs_from_edges(const graph::EdgeList& el);

/// arcs_from_edges generalized to ArcsInput — the CSR-native ingestion
/// path. Edge-backed inputs copy the span in parallel (identical to
/// arcs_from_edges); CSR-backed inputs scatter arcs straight out of the
/// (mmap'd) adjacency with a blocked parallel emit, no intermediate
/// EdgeList. The emitted (u, v, orig) sequence for a CSR is exactly
/// arcs_from_edges(edge_list_from_csr(csr)) — the canonical smaller-
/// endpoint order — so every downstream result is bit-identical between
/// the two paths, for every thread count.
std::vector<Arc> arcs_from_input(const graph::ArcsInput& in);

/// ALTER: every arc (u, v) becomes (u.p, v.p); `orig` is preserved.
/// Data-parallel map over the arcs.
void alter(std::vector<Arc>& arcs, const ParentForest& forest);

/// Drops self-loop arcs (u == v) with a stable parallel pack. Returns the
/// number removed.
std::uint64_t drop_loops(std::vector<Arc>& arcs);

/// Dedup on (u, v) treating arcs as undirected; keeps the minimum `orig`
/// per surviving pair. Controls arc-list growth after ALTERs. Small lists
/// sort+unique serially; large ones bucket-partition by mix64(u) high bits
/// and sort buckets in parallel. The path is chosen by size only, so for a
/// given input the output (including its order) is identical on every
/// thread count.
void dedup_arcs(std::vector<Arc>& arcs);

/// True iff some arc is not a self-loop — the paper's "no edge exists other
/// than loops" break condition, negated.
bool has_nonloop(const std::vector<Arc>& arcs);

/// Sentinel for the collect_ongoing scratch: "vertex not yet seen".
inline constexpr std::uint64_t kUnseenIndex = static_cast<std::uint64_t>(-1);

/// Distinct endpoints of non-loop arcs — the "ongoing" vertices of a phase,
/// in first-appearance order over the directed arc sweep. All must be roots
/// (flat trees + ALTER guarantee this; checked in debug builds).
/// Data-parallel: a fetch-min of the directed occurrence index per endpoint
/// followed by a stable pack keeping each vertex at its minimum occurrence,
/// so the output is identical for every thread count (and identical to the
/// old serial sweep). `first_seen` is caller-owned scratch the phase loop
/// hoists: all entries must be kUnseenIndex on entry and are restored
/// before returning (by clearing only the touched entries), so each phase
/// costs O(m) parallel work instead of an O(n) re-`assign`.
std::vector<VertexId> collect_ongoing(const ParentForest& forest,
                                      const std::vector<Arc>& arcs,
                                      std::vector<std::uint64_t>& first_seen);

/// Out-parameter form of collect_ongoing: `out` is clear()ed and refilled,
/// so a phase loop that hoists it reuses its capacity — no per-phase
/// allocation in steady state (part of the RoundArena zero-allocation
/// property; see core/round_arena.hpp).
void collect_ongoing(const ParentForest& forest, const std::vector<Arc>& arcs,
                     std::vector<std::uint64_t>& first_seen,
                     std::vector<VertexId>& out);

/// Count-only variant of collect_ongoing, same scratch protocol.
std::uint64_t count_ongoing(const ParentForest& forest,
                            const std::vector<Arc>& arcs,
                            std::vector<std::uint64_t>& first_seen);

/// Guaranteed-convergent finisher (DESIGN.md §5.3): deterministic
/// Boruvka-style min-label hooking + full flatten + ALTER until no non-loop
/// arc remains. O(log n) rounds worst case, no randomness. Used when a
/// randomized driver exhausts its round budget, and as the last stage of
/// Theorem-3 runs. Returns the number of rounds.
std::uint64_t deterministic_contract(ParentForest& forest,
                                     std::vector<Arc>& arcs, RunStats& stats);

/// Spanning-forest flavour: records, for every hook, the original input edge
/// that realised it (`in_forest[orig] = 1`).
std::uint64_t deterministic_contract_sf(ParentForest& forest,
                                        std::vector<Arc>& arcs,
                                        std::vector<std::uint8_t>& in_forest,
                                        RunStats& stats);

}  // namespace logcc::core
