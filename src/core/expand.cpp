#include "core/expand.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace logcc::core {

ExpandEngine::ExpandEngine(std::uint64_t n, std::span<const VertexId> ongoing,
                           std::span<const Arc> arcs,
                           const ExpandParams& params, RunStats& stats)
    : n_(n),
      ongoing_(ongoing.begin(), ongoing.end()),
      arcs_(arcs),
      params_(params),
      stats_(stats),
      hb_(util::PairwiseHash::from_seed(params.seed, 0xb10c)),
      hv_(util::PairwiseHash::from_seed(params.seed, 0x7ab1e)) {
  LOGCC_CHECK(params_.block_count >= 1);
  LOGCC_CHECK(params_.table_capacity >= 2);
  slot_of_.assign(n_, kNoSlot);
  for (std::uint32_t s = 0; s < ongoing_.size(); ++s) {
    LOGCC_CHECK(ongoing_[s] < n_);
    LOGCC_CHECK_MSG(slot_of_[ongoing_[s]] == kNoSlot, "duplicate ongoing id");
    slot_of_[ongoing_[s]] = s;
  }
  owns_block_.assign(ongoing_.size(), 0);
  dormant_round_.assign(ongoing_.size(), kNeverDormant);
  tables_.assign(ongoing_.size(), VertexTable(params_.table_capacity));
}

void ExpandEngine::mark_dormant(std::uint32_t slot, std::uint32_t round) {
  if (dormant_round_[slot] == kNeverDormant) dormant_round_[slot] = round;
}

void ExpandEngine::assign_blocks() {
  // h_B maps each ongoing vertex to a block; owning = unique occupant
  // (detected CRCW-style: write your id, re-read, then a second pass where
  // losers invalidate the cell — host-side we just count occupants).
  std::unordered_map<std::uint64_t, std::uint32_t> occupancy;
  occupancy.reserve(ongoing_.size() * 2);
  for (VertexId v : ongoing_) ++occupancy[hb_(v, params_.block_count)];
  for (std::uint32_t s = 0; s < ongoing_.size(); ++s) {
    owns_block_[s] = occupancy[hb_(ongoing_[s], params_.block_count)] == 1;
    if (!owns_block_[s]) mark_dormant(s, 0);
  }
  stats_.pram_steps += 2;
}

void ExpandEngine::seed_tables() {
  // Step (3): every arc (v, w), both directions. Live v hashes v and w into
  // H(v); a v without a block instead marks its neighbours dormant.
  for (const Arc& a : arcs_) {
    for (int dir = 0; dir < 2; ++dir) {
      VertexId v = dir ? a.v : a.u;
      VertexId w = dir ? a.u : a.v;
      std::uint32_t sv = slot_of_[v];
      std::uint32_t sw = slot_of_[w];
      if (sv == kNoSlot || sw == kNoSlot) continue;
      if (owns_block_[sv]) {
        VertexTable& t = tables_[sv];
        if (t.insert_at(static_cast<std::uint32_t>(hv_(v, t.capacity())), v) ==
            VertexTable::Insert::kCollision)
          ++stats_.hash_collisions;
        if (t.insert_at(static_cast<std::uint32_t>(hv_(w, t.capacity())), w) ==
            VertexTable::Insert::kCollision)
          ++stats_.hash_collisions;
      } else {
        mark_dormant(sw, 0);
      }
    }
  }
  // Isolated block owner still holds itself.
  for (std::uint32_t s = 0; s < ongoing_.size(); ++s) {
    if (!owns_block_[s]) continue;
    VertexTable& t = tables_[s];
    VertexId v = ongoing_[s];
    if (t.insert_at(static_cast<std::uint32_t>(hv_(v, t.capacity())), v) ==
        VertexTable::Insert::kCollision)
      ++stats_.hash_collisions;
  }
  // Step (4): collisions observed in round 0.
  for (std::uint32_t s = 0; s < ongoing_.size(); ++s)
    if (tables_[s].collided()) mark_dormant(s, 0);
  stats_.pram_steps += 2;
}

void ExpandEngine::snapshot_history() {
  if (!params_.keep_history) return;
  history_.emplace_back();
  auto& snap = history_.back();
  snap.resize(ongoing_.size());
  for (std::uint32_t s = 0; s < ongoing_.size(); ++s)
    snap[s] = tables_[s].items();
}

void ExpandEngine::doubling_rounds() {
  const std::uint32_t num = num_slots();
  std::vector<std::uint8_t> changed(num, 1);  // table changed last round
  std::vector<std::uint8_t> went_dormant(num, 0);
  for (std::uint32_t s = 0; s < num; ++s)
    went_dormant[s] = dormant_round_[s] != kNeverDormant;

  for (std::uint32_t round = 1; round <= params_.max_rounds; ++round) {
    ++stats_.pram_steps;
    ++stats_.expand_rounds;

    // Snapshot table contents (synchronous semantics: this round reads the
    // previous round's tables) and dormancy entering this round.
    std::vector<std::vector<VertexId>> prev(num);
    for (std::uint32_t s = 0; s < num; ++s) prev[s] = tables_[s].items();
    std::vector<std::uint8_t> dormant_in(num);
    for (std::uint32_t s = 0; s < num; ++s)
      dormant_in[s] = dormant_round_[s] != kNeverDormant;

    std::vector<std::uint8_t> changed_now(num, 0);
    std::vector<std::uint8_t> dormant_now(num, 0);
    bool any_change = false;

    for (std::uint32_t s = 0; s < num; ++s) {
      if (!owns_block_[s]) continue;
      // Skip slots whose whole 2-neighbourhood in table space is stable.
      bool needs_work = changed[s] != 0;
      if (!needs_work) {
        for (VertexId v : prev[s]) {
          std::uint32_t sv = slot_of_[v];
          if (sv != kNoSlot && (changed[sv] || went_dormant[sv])) {
            needs_work = true;
            break;
          }
        }
      }
      if (!needs_work) continue;

      VertexTable& t = tables_[s];
      for (VertexId v : prev[s]) {
        std::uint32_t sv = slot_of_[v];
        if (sv == kNoSlot) continue;
        if (dormant_in[sv]) {
          if (dormant_round_[s] == kNeverDormant) {
            mark_dormant(s, round);
            dormant_now[s] = 1;
            any_change = true;
          }
        }
        for (VertexId w : prev[sv]) {
          auto r = t.insert_at(static_cast<std::uint32_t>(hv_(w, t.capacity())), w);
          if (r == VertexTable::Insert::kNew) {
            changed_now[s] = 1;
            any_change = true;
          } else if (r == VertexTable::Insert::kCollision) {
            ++stats_.hash_collisions;
            if (dormant_round_[s] == kNeverDormant) {
              mark_dormant(s, round);
              dormant_now[s] = 1;
              any_change = true;
            }
          }
        }
      }
    }

    rounds_ = round;
    snapshot_history();
    changed.swap(changed_now);
    went_dormant.swap(dormant_now);
    if (!any_change) break;
  }
}

void ExpandEngine::run() {
  assign_blocks();
  seed_tables();
  snapshot_history();  // H_0
  doubling_rounds();
}

const std::vector<VertexId>& ExpandEngine::history(std::uint32_t j,
                                                   std::uint32_t slot) const {
  LOGCC_CHECK_MSG(params_.keep_history, "history not retained");
  LOGCC_CHECK(j < history_.size());
  return history_[j][slot];
}

}  // namespace logcc::core
