#include "core/expand.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"

namespace logcc::core {

namespace {

/// Buckets for the occupancy partition: a pure function of the slot count
/// (only called for n >= kSerialGrain, so >= 2 keeps the key shift < 64).
std::size_t occupancy_bucket_count(std::size_t n) {
  std::size_t buckets = 2;
  while (buckets < 256 && buckets * util::kSerialGrain < n) buckets <<= 1;
  return buckets;
}

}  // namespace

ExpandEngine::ExpandEngine(std::uint64_t n, std::span<const VertexId> ongoing,
                           std::span<const Arc> arcs,
                           const ExpandParams& params, RunStats& stats,
                           ExpandScratch* scratch)
    : n_(n),
      ongoing_(ongoing.begin(), ongoing.end()),
      arcs_(arcs),
      params_(params),
      stats_(stats),
      hb_(util::PairwiseHash::from_seed(params.seed, 0xb10c)),
      hv_(util::PairwiseHash::from_seed(params.seed, 0x7ab1e)),
      scratch_(scratch ? scratch : &own_scratch_) {
  LOGCC_CHECK(params_.block_count >= 1);
  LOGCC_CHECK(params_.table_capacity >= 2);
  const std::uint32_t num = num_slots();
  // The hoisted slot map holds kNoSlot everywhere except the previous
  // engine's ongoing set, which its destructor reset — only fresh entries
  // need initialising.
  auto& slot_of = scratch_->slot_of;
  const std::size_t old_size = slot_of.size();
  if (old_size < n_) slot_of.resize(n_);
  util::parallel_for(old_size, n_,
                     [&](std::size_t v) { slot_of[v] = kNoSlot; });
  util::parallel_for(0, num, [&](std::size_t s) {
    LOGCC_CHECK(ongoing_[s] < n_);
    // Concurrent writers disagree only on duplicate ids, which the
    // verification pass below turns into a deterministic failure.
    util::relaxed_store(slot_of[ongoing_[s]],
                        static_cast<std::uint32_t>(s));
  });
  util::parallel_for(0, num, [&](std::size_t s) {
    LOGCC_CHECK_MSG(slot_of[ongoing_[s]] == s, "duplicate ongoing id");
  });
  // Tables live in the scratch's contiguous slab: epoch-reset is O(num)
  // bookkeeping (no per-cell zeroing, no per-table vectors), and across
  // phases the slab memory is reused outright.
  scratch_->tables.reset_uniform(num, params_.table_capacity);
  scratch_->owns_block.resize(num);
  scratch_->dormant_round.resize(num);
  util::parallel_for(0, num, [&](std::size_t s) {
    scratch_->owns_block[s] = 0;
    scratch_->dormant_round[s] = kNeverDormant;
  });
  scratch_->collisions.resize(num);
}

ExpandEngine::~ExpandEngine() {
  auto& slot_of = scratch_->slot_of;
  util::parallel_for(0, ongoing_.size(),
                     [&](std::size_t s) { slot_of[ongoing_[s]] = kNoSlot; });
}

void ExpandEngine::mark_dormant(std::uint32_t slot, std::uint32_t round) {
  auto& dormant_round = scratch_->dormant_round;
  if (dormant_round[slot] == kNeverDormant) dormant_round[slot] = round;
}

void ExpandEngine::flush_collisions() {
  auto& coll = scratch_->collisions;
  stats_.hash_collisions += util::parallel_reduce(
      std::size_t{0}, coll.size(), std::uint64_t{0},
      [&](std::size_t s) { return coll[s]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

void ExpandEngine::assign_blocks() {
  // h_B maps each ongoing vertex to a block; owning = unique occupant
  // (detected CRCW-style: write your id, re-read, then a second pass where
  // losers invalidate the cell — host-side we count occupants per key).
  // Both paths compute the same "occupancy == 1" predicate; the path choice
  // keys on size only, so results never depend on the thread count.
  const std::uint32_t num = num_slots();
  auto& owns_block = scratch_->owns_block;
  auto& dormant_round = scratch_->dormant_round;
  if (num < util::kSerialGrain) {
    std::unordered_map<std::uint64_t, std::uint32_t> occupancy;
    occupancy.reserve(num * 2);
    for (VertexId v : ongoing_) ++occupancy[hb_(v, params_.block_count)];
    for (std::uint32_t s = 0; s < num; ++s) {
      owns_block[s] = occupancy[hb_(ongoing_[s], params_.block_count)] == 1;
      if (!owns_block[s]) mark_dormant(s, 0);
    }
    stats_.pram_steps += 2;
    return;
  }
  // Parallel occupancy: stable bucket partition of (block key, slot) pairs
  // by mixed key bits, then a per-bucket sort + run scan. Every slot
  // appears exactly once, so the owner writes are disjoint.
  auto& keys = scratch_->block_keys;
  auto& scattered = scratch_->block_keys_tmp;
  keys.resize(num);
  util::parallel_for(0, num, [&](std::size_t s) {
    keys[s] = {hb_(ongoing_[s], params_.block_count),
               static_cast<std::uint32_t>(s)};
  });
  const std::size_t buckets = occupancy_bucket_count(num);
  const int shift = 64 - std::countr_zero(buckets);
  scattered.resize(keys.size());
  util::ScratchBuffer<std::size_t> begin(buckets + 1);
  util::parallel_bucket_partition_into(
      keys.data(), keys.size(), scattered.data(), begin.span(), buckets,
      [shift](const auto& kv) {
        return static_cast<std::size_t>(util::mix64(kv.first) >> shift);
      });
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    auto* lo = scattered.data() + begin[k];
    auto* hi = scattered.data() + begin[k + 1];
    std::sort(lo, hi);
    for (auto* p = lo; p != hi;) {
      auto* q = p + 1;
      while (q != hi && q->first == p->first) ++q;
      const bool owner = (q - p) == 1;
      for (; p != q; ++p) {
        owns_block[p->second] = owner;
        if (!owner) dormant_round[p->second] = 0;
      }
    }
  });
  stats_.pram_steps += 2;
}

void ExpandEngine::seed_tables() {
  // Step (3): every arc (v, w), both directions — directed index j covers
  // arc j/2, direction j%2. A live v hashes v and w into H(v); a v without
  // a block instead marks its neighbours dormant (idempotent store of
  // round 0).
  const std::size_t m2 = arcs_.size() * 2;
  const auto& slot_of = scratch_->slot_of;
  auto& owns_block = scratch_->owns_block;
  auto& dormant_round = scratch_->dormant_round;
  util::parallel_for(0, m2, [&](std::size_t j) {
    const Arc& a = arcs_[j >> 1];
    const VertexId v = (j & 1) ? a.v : a.u;
    const VertexId w = (j & 1) ? a.u : a.v;
    const std::uint32_t sv = slot_of[v];
    const std::uint32_t sw = slot_of[w];
    if (sv == kNoSlot || sw == kNoSlot) return;
    if (!owns_block[sv]) util::relaxed_store(dormant_round[sw], 0u);
  });
  // Bucket-partitioned table fill: emit the (owner slot, vertex) items in
  // directed-arc order, group them by slot, then let every slot replay its
  // own inserts serially — same per-table insert order as the serial
  // sweep, but slots fill in parallel.
  auto& items = scratch_->fill_items;
  auto& grouped = scratch_->fill_items_grouped;
  util::parallel_emit(
      m2, items,
      [&](std::size_t j) -> std::size_t {
        const Arc& a = arcs_[j >> 1];
        const VertexId v = (j & 1) ? a.v : a.u;
        const VertexId w = (j & 1) ? a.u : a.v;
        const std::uint32_t sv = slot_of[v];
        const std::uint32_t sw = slot_of[w];
        return (sv != kNoSlot && sw != kNoSlot && owns_block[sv]) ? 2 : 0;
      },
      [&](std::size_t j, std::pair<std::uint32_t, VertexId>* dst) {
        const Arc& a = arcs_[j >> 1];
        const VertexId v = (j & 1) ? a.v : a.u;
        const VertexId w = (j & 1) ? a.u : a.v;
        const std::uint32_t sv = slot_of[v];
        dst[0] = {sv, v};
        dst[1] = {sv, w};
      });
  const std::uint32_t num = num_slots();
  util::ScratchBuffer<std::size_t> slot_begin(num + 1);
  util::parallel_group_by_into(items, grouped, num,
                               [](const auto& it) { return it.first; },
                               slot_begin.span());
  auto& coll = scratch_->collisions;
  TableSlab& tables = scratch_->tables;
  const std::uint32_t cap = params_.table_capacity;
  util::parallel_for(0, num, [&](std::size_t s) {
    coll[s] = 0;
    if (!owns_block[s]) return;
    const auto t = static_cast<std::uint32_t>(s);
    for (std::size_t i = slot_begin[s]; i < slot_begin[s + 1]; ++i) {
      const VertexId w = grouped[i].second;
      if (tables.insert_at(t, static_cast<std::uint32_t>(hv_(w, cap)), w) ==
          TableSlab::Insert::kCollision)
        ++coll[s];
    }
    // Isolated block owner still holds itself.
    const VertexId v = ongoing_[s];
    if (tables.insert_at(t, static_cast<std::uint32_t>(hv_(v, cap)), v) ==
        TableSlab::Insert::kCollision)
      ++coll[s];
  });
  flush_collisions();
  // Step (4): collisions observed in round 0.
  util::parallel_for(0, num, [&](std::size_t s) {
    if (tables.collided(static_cast<std::uint32_t>(s))) mark_dormant(s, 0);
  });
  stats_.pram_steps += 2;
}

void ExpandEngine::snapshot_history() {
  if (!params_.keep_history) return;
  history_.emplace_back();
  auto& snap = history_.back();
  snap.resize(ongoing_.size());
  const TableSlab& tables = scratch_->tables;
  util::parallel_for(0, ongoing_.size(), [&](std::size_t s) {
    auto& items = snap[s];
    items.clear();
    items.reserve(tables.count(static_cast<std::uint32_t>(s)));
    tables.for_each(static_cast<std::uint32_t>(s),
                    [&](VertexId w) { items.push_back(w); });
  });
}

void ExpandEngine::doubling_rounds() {
  const std::uint32_t num = num_slots();
  const auto& slot_of = scratch_->slot_of;
  auto& coll = scratch_->collisions;
  auto& owns_block = scratch_->owns_block;
  auto& dormant_round = scratch_->dormant_round;
  TableSlab& tables = scratch_->tables;
  const std::uint32_t cap = params_.table_capacity;

  auto& changed = scratch_->changed;          // table changed last round
  auto& went_dormant = scratch_->went_dormant;
  auto& dormant_in = scratch_->dormant_in;
  auto& changed_now = scratch_->changed_now;
  auto& dormant_now = scratch_->dormant_now;
  changed.resize(num);
  went_dormant.resize(num);
  dormant_in.resize(num);
  changed_now.resize(num);
  dormant_now.resize(num);
  util::parallel_for(0, num, [&](std::size_t s) {
    changed[s] = 1;
    went_dormant[s] = dormant_round[s] != kNeverDormant;
  });
  auto& snap = scratch_->snapshot_words;

  for (std::uint32_t round = 1; round <= params_.max_rounds; ++round) {
    // Safe here even when a phase loop above holds the arena: between
    // kernel calls nothing lives in it (the RoundArena rule).
    util::scratch_arena_round_reset();
    ++stats_.pram_steps;
    ++stats_.expand_rounds;

    // Snapshot table contents (synchronous semantics: this round reads the
    // previous round's tables) as ONE flat copy of the slab — no per-slot
    // item vectors — and dormancy entering this round.
    tables.snapshot_into(snap);
    util::parallel_for(0, num, [&](std::size_t s) {
      dormant_in[s] = dormant_round[s] != kNeverDormant;
      changed_now[s] = 0;
      dormant_now[s] = 0;
      coll[s] = 0;
    });

    // One doubling step, parallel over slots: slot s reads only the
    // snapshots and writes only its own table/flags/tally. Iteration is in
    // cell order, exactly the order the per-slot items() snapshots gave.
    util::parallel_for(0, num, [&](std::size_t s) {
      if (!owns_block[s]) return;
      const auto t = static_cast<std::uint32_t>(s);
      // Skip slots whose whole 2-neighbourhood in table space is stable.
      bool needs_work = changed[s] != 0;
      if (!needs_work) {
        tables.for_each_in(snap, t, [&](VertexId v) {
          std::uint32_t sv = slot_of[v];
          if (sv != kNoSlot && (changed[sv] || went_dormant[sv]))
            needs_work = true;
        });
      }
      if (!needs_work) return;

      tables.for_each_in(snap, t, [&](VertexId v) {
        std::uint32_t sv = slot_of[v];
        if (sv == kNoSlot) return;
        if (dormant_in[sv]) {
          if (dormant_round[s] == kNeverDormant) {
            mark_dormant(t, round);
            dormant_now[s] = 1;
          }
        }
        tables.for_each_in(snap, sv, [&](VertexId w) {
          auto r = tables.insert_at(
              t, static_cast<std::uint32_t>(hv_(w, cap)), w);
          if (r == TableSlab::Insert::kNew) {
            changed_now[s] = 1;
          } else if (r == TableSlab::Insert::kCollision) {
            ++coll[s];
            if (dormant_round[s] == kNeverDormant) {
              mark_dormant(t, round);
              dormant_now[s] = 1;
            }
          }
        });
      });
    });
    flush_collisions();
    const bool any_change = util::parallel_reduce(
        std::size_t{0}, static_cast<std::size_t>(num), false,
        [&](std::size_t s) { return (changed_now[s] | dormant_now[s]) != 0; },
        [](bool a, bool b) { return a || b; });

    rounds_ = round;
    snapshot_history();
    changed.swap(changed_now);
    went_dormant.swap(dormant_now);
    if (!any_change) break;
  }
}

void ExpandEngine::run() {
  assign_blocks();
  seed_tables();
  snapshot_history();  // H_0
  doubling_rounds();
}

const std::vector<VertexId>& ExpandEngine::history(std::uint32_t j,
                                                   std::uint32_t slot) const {
  LOGCC_CHECK_MSG(params_.keep_history, "history not retained");
  LOGCC_CHECK(j < history_.size());
  return history_[j][slot];
}

}  // namespace logcc::core
