// Vanilla algorithm (§B.1) — Reif's random-vote leader contraction recast in
// the paper's framework — and Vanilla-SF (§C.1), its spanning-forest variant.
//
// Used three ways: standalone O(log n) randomized baseline, the PREPARE /
// FOREST-PREPARE densification step of Theorems 1–3, and (run to completion)
// part of the library's guaranteed finisher.
#pragma once

#include <cstdint>
#include <vector>

#include "core/building_blocks.hpp"
#include "core/labels.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

struct VanillaOptions {
  std::uint64_t seed = 1;
  /// 0 = run until no non-loop edge remains; otherwise stop after this many
  /// phases (the PREPARE use).
  std::uint64_t max_phases = 0;
  /// Keep the arc list deduplicated between phases (bounds work; semantics
  /// are unchanged because edges are a set).
  bool dedup = true;
};

/// Runs Vanilla phases in place on (forest, arcs). Arcs must connect roots of
/// flat trees (true initially and re-established every phase). Returns the
/// number of phases executed; RunStats::phases/pram_steps are advanced.
std::uint64_t vanilla_phases(ParentForest& forest, std::vector<Arc>& arcs,
                             const VanillaOptions& opt, RunStats& stats);

/// Vanilla-SF phases: additionally records, for every LINK, the original
/// input edge that realised it (`in_forest[orig] = 1`).
std::uint64_t vanilla_sf_phases(ParentForest& forest, std::vector<Arc>& arcs,
                                std::vector<std::uint8_t>& in_forest,
                                const VanillaOptions& opt, RunStats& stats);

struct VanillaCcResult {
  std::vector<VertexId> labels;
  RunStats stats;
};

/// Standalone Vanilla connected components. The ArcsInput overload is the
/// real entry point (CSR-backed inputs ingest without an EdgeList); the
/// EdgeList overload is a forwarding shim.
VanillaCcResult vanilla_cc(const graph::ArcsInput& in, std::uint64_t seed = 1);
VanillaCcResult vanilla_cc(const graph::EdgeList& el, std::uint64_t seed = 1);

struct VanillaSfResult {
  std::vector<std::uint64_t> forest_edges;  // canonical edge indices
  RunStats stats;
};

/// Standalone Vanilla-SF spanning forest.
VanillaSfResult vanilla_sf(const graph::ArcsInput& in, std::uint64_t seed = 1);
VanillaSfResult vanilla_sf(const graph::EdgeList& el, std::uint64_t seed = 1);

}  // namespace logcc::core
