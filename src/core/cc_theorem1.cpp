#include "core/cc_theorem1.hpp"

#include <algorithm>
#include <cmath>

#include "core/expand.hpp"
#include "core/round_arena.hpp"
#include "core/vanilla.hpp"
#include "core/vote.hpp"
#include "util/arena.hpp"
#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

Theorem1Params Theorem1Params::paper(std::uint64_t n, std::uint64_t m) {
  (void)m;
  Theorem1Params p;
  p.block_exp = 2.0 / 3.0;
  p.table_exp = 1.0 / 3.0;
  p.b_exp = 1.0 / 18.0;
  p.min_table_capacity = 2;
  // log^c n with c = 100: at feasible n this exceeds any real m/n, so
  // PREPARE dominates — exactly what the theory predicts for small inputs.
  double log_n = std::log2(std::max<double>(n, 4));
  p.prepare_target_density = std::pow(log_n, 100.0);
  p.prepare_max_phases =
      static_cast<std::uint64_t>(100.0 * util::log_base(std::max(4.0, std::log2(std::max<double>(n, 4))), 8.0 / 7.0)) +
      8;
  return p;
}

void theorem1_phases(ParentForest& forest, std::vector<Arc>& arcs,
                     std::uint64_t m0, const Theorem1Params& params,
                     RunStats& stats) {
  const std::uint64_t n = forest.size();
  m0 = std::max<std::uint64_t>(m0, 1);

  std::uint64_t max_phases = params.max_phases;
  if (max_phases == 0) {
    max_phases = static_cast<std::uint64_t>(
                     8.0 * util::loglog_density(n, m0)) +
                 24;
  }

  // ñ update rule state (§B.5) for the pure-ARBITRARY variant.
  double n_tilde = static_cast<double>(std::max<std::uint64_t>(n, 1));

  std::vector<std::uint64_t> seen_scratch;  // reused by every phase
  ExpandScratch expand_scratch;             // ditto (slot map + fill buffers)
  // Hoisted per-phase buffers (ongoing set, leader flags, LINK choices):
  // steady-state phases reuse their capacity instead of allocating.
  std::vector<VertexId> ongoing;
  std::vector<std::uint8_t> leader;
  std::vector<VertexId> chosen;
  std::uint64_t phase = 0;
  while (true) {
    util::scratch_arena_round_reset();
    dedup_arcs(arcs);
    drop_loops(arcs);
    if (!has_nonloop(arcs)) return;
    if (phase >= max_phases) break;  // to finisher
    ++phase;
    ++stats.phases;

    collect_ongoing(forest, arcs, seen_scratch, ongoing);
    const double n_prime = params.exact_count
                               ? static_cast<double>(ongoing.size())
                               : std::max(1.0, n_tilde);
    const double delta = std::max(2.0, static_cast<double>(m0) / n_prime);
    const double b = std::max(2.0, std::pow(delta, params.b_exp));

    ExpandParams ep;
    ep.seed = util::mix64(params.seed, 0xE0 + phase);
    ep.table_capacity = static_cast<std::uint32_t>(
        std::clamp<double>(std::pow(delta, params.table_exp),
                           params.min_table_capacity, double(1u << 22)));
    const double block_size = std::max(4.0, std::pow(delta, params.block_exp));
    ep.block_count =
        std::max<std::uint64_t>(2 * ongoing.size() + 1,
                                static_cast<std::uint64_t>(
                                    static_cast<double>(m0) / block_size));
    ep.max_rounds = util::ceil_log2(std::max<std::uint64_t>(n, 2)) + 4;
    ep.keep_history = false;

    ExpandEngine expand(n, ongoing, arcs, ep, stats, &expand_scratch);
    expand.run();

    VoteParams vp;
    vp.dormant_leader_prob = std::pow(b, -2.0 / 3.0);
    vp.seed = util::mix64(params.seed, 0x40E + phase);
    vote(expand, vp, stats, leader);

    // Space in use this phase: arc processors + all tables.
    stats.peak_space_words =
        std::max(stats.peak_space_words,
                 arcs.size() * 3 + static_cast<std::uint64_t>(ongoing.size()) *
                                       ep.table_capacity);
    stats.total_block_words +=
        static_cast<std::uint64_t>(ongoing.size()) * ep.table_capacity;

    // LINK: non-leaders adopt a leader in their neighbour set (graph arcs
    // plus the expanded tables). The ARBITRARY write resolution becomes a
    // fetch-min on the leader id, so the adopted parent is the same for
    // every thread count.
    stats.pram_steps += 1;
    const std::uint32_t num = expand.num_slots();
    chosen.assign(num, graph::kInvalidVertex);
    util::parallel_for(0, arcs.size(), [&](std::size_t i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) return;
      std::uint32_t su = expand.slot_of(a.u);
      std::uint32_t sv = expand.slot_of(a.v);
      if (su == ExpandEngine::kNoSlot || sv == ExpandEngine::kNoSlot) return;
      if (!leader[su] && leader[sv]) util::atomic_min(chosen[su], a.v);
      if (!leader[sv] && leader[su]) util::atomic_min(chosen[sv], a.u);
    });
    // Each non-leader scans its own table — disjoint writes, no atomics.
    util::parallel_for(0, num, [&](std::size_t s) {
      if (leader[s]) return;
      VertexId best = chosen[s];
      expand.table(static_cast<std::uint32_t>(s)).for_each([&](VertexId w) {
        std::uint32_t sw = expand.slot_of(w);
        if (sw != ExpandEngine::kNoSlot && leader[sw] && w < best) best = w;
      });
      chosen[s] = best;
    });
    util::parallel_for(0, num, [&](std::size_t s) {
      if (chosen[s] == graph::kInvalidVertex) return;
      VertexId v = expand.vertex_of(static_cast<std::uint32_t>(s));
      if (forest.is_root(v)) forest.set_parent(v, chosen[s]);
    });

    // SHORTCUT; ALTER.
    forest.shortcut();
    stats.pram_steps += 2;
    alter(arcs, forest);
    drop_loops(arcs);

    // ñ update rule (§B.5): ñ := ñ / b^{1/4}.
    n_tilde = std::max(1.0, n_tilde / std::pow(b, 0.25));
  }

  // Round budget exhausted (vanishingly rare; bench T4 quantifies): finish
  // deterministically.
  stats.finisher_used = true;
  deterministic_contract(forest, arcs, stats);
}

CcResult theorem1_cc(const graph::ArcsInput& in, const Theorem1Params& params) {
  CcResult out;
  RoundArena round_arena;
  RoundArena::Scope arena_scope(round_arena);
  const std::uint64_t n = in.num_vertices();
  ParentForest forest(n);
  std::vector<Arc> arcs = arcs_from_input(in);
  drop_loops(arcs);
  dedup_arcs(arcs);
  const std::uint64_t m0 = std::max<std::uint64_t>(arcs.size(), 1);

  // PREPARE (§B.2): densify with Vanilla while m/n' is below target.
  if (has_nonloop(arcs)) {
    double density = static_cast<double>(m0) /
                     std::max<double>(1.0, static_cast<double>(n));
    if (density < params.prepare_target_density) {
      out.stats.prepare_used = true;
      VanillaOptions vo;
      vo.max_phases = 1;
      const std::uint64_t phases_before = out.stats.phases;
      std::uint64_t budget = params.prepare_max_phases;
      if (budget == Theorem1Params::kAutoPreparePhases)
        budget = static_cast<std::uint64_t>(
                     2.0 * util::loglog_density(n, m0)) +
                 4;
      std::vector<std::uint64_t> seen_scratch;
      std::vector<VertexId> ongoing;
      std::uint64_t prepare_phases = 0;
      while (prepare_phases < budget && has_nonloop(arcs)) {
        util::scratch_arena_round_reset();
        collect_ongoing(forest, arcs, seen_scratch, ongoing);
        if (static_cast<double>(m0) /
                std::max<double>(1.0, static_cast<double>(ongoing.size())) >=
            params.prepare_target_density)
          break;
        vo.seed = util::mix64(params.seed, 0xAA00 + prepare_phases);
        vanilla_phases(forest, arcs, vo, out.stats);
        ++prepare_phases;
      }
      // Report densification separately from the theorem's phase loop.
      out.stats.prepare_phases += out.stats.phases - phases_before;
      out.stats.phases = phases_before;
    }
  }

  theorem1_phases(forest, arcs, m0, params, out.stats);

  forest.flatten();
  out.labels = forest.root_labels();
  return out;
}

CcResult theorem1_cc(const graph::EdgeList& el, const Theorem1Params& params) {
  return theorem1_cc(graph::ArcsInput::from_edges(el), params);
}

}  // namespace logcc::core
