#include "core/building_blocks.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logcc::core {

std::vector<Arc> arcs_from_edges(const graph::EdgeList& el) {
  std::vector<Arc> arcs;
  arcs.reserve(el.edges.size());
  for (std::uint32_t i = 0; i < el.edges.size(); ++i) {
    const auto& e = el.edges[i];
    LOGCC_CHECK(e.u < el.n && e.v < el.n);
    arcs.push_back({e.u, e.v, i});
  }
  return arcs;
}

void alter(std::vector<Arc>& arcs, const ParentForest& forest) {
  for (Arc& a : arcs) {
    a.u = forest.parent(a.u);
    a.v = forest.parent(a.v);
  }
}

std::uint64_t drop_loops(std::vector<Arc>& arcs) {
  std::uint64_t before = arcs.size();
  std::erase_if(arcs, [](const Arc& a) { return a.u == a.v; });
  return before - arcs.size();
}

void dedup_arcs(std::vector<Arc>& arcs) {
  for (Arc& a : arcs)
    if (a.u > a.v) std::swap(a.u, a.v);
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const Arc& a, const Arc& b) {
                           return a.u == b.u && a.v == b.v;
                         }),
             arcs.end());
}

bool has_nonloop(const std::vector<Arc>& arcs) {
  for (const Arc& a : arcs)
    if (a.u != a.v) return true;
  return false;
}

namespace {

template <typename MarkFn>
std::uint64_t contract_impl(ParentForest& forest, std::vector<Arc>& arcs,
                            RunStats& stats, MarkFn&& mark) {
  // Invariant at the top of every round: trees are flat, arcs connect roots.
  forest.flatten();
  alter(arcs, forest);
  drop_loops(arcs);

  std::uint64_t rounds = 0;
  while (has_nonloop(arcs)) {
    ++rounds;
    ++stats.phases;
    stats.pram_steps += 3;  // hook, flatten(amortised), alter
    // Every root hooks onto the minimum neighbouring root label (strictly
    // smaller than itself): Boruvka hooking. Local-minima roots survive, so
    // the root count at least halves per component per round.
    const std::uint64_t n = forest.size();
    std::vector<VertexId> best(n);
    std::vector<std::uint32_t> best_arc(n, static_cast<std::uint32_t>(-1));
    for (std::uint64_t v = 0; v < n; ++v) best[v] = static_cast<VertexId>(v);
    for (std::uint32_t i = 0; i < arcs.size(); ++i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) continue;
      if (a.v < best[a.u]) {
        best[a.u] = a.v;
        best_arc[a.u] = i;
      }
      if (a.u < best[a.v]) {
        best[a.v] = a.u;
        best_arc[a.v] = i;
      }
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      if (best[v] < v && forest.is_root(static_cast<VertexId>(v))) {
        forest.set_parent(static_cast<VertexId>(v), best[v]);
        mark(arcs[best_arc[v]]);
      }
    }
    forest.flatten();
    alter(arcs, forest);
    drop_loops(arcs);
    dedup_arcs(arcs);
    LOGCC_CHECK_MSG(rounds <= 4096, "deterministic contract diverged");
  }
  return rounds;
}

}  // namespace

std::uint64_t deterministic_contract(ParentForest& forest,
                                     std::vector<Arc>& arcs, RunStats& stats) {
  return contract_impl(forest, arcs, stats, [](const Arc&) {});
}

std::uint64_t deterministic_contract_sf(ParentForest& forest,
                                        std::vector<Arc>& arcs,
                                        std::vector<std::uint8_t>& in_forest,
                                        RunStats& stats) {
  return contract_impl(forest, arcs, stats,
                       [&](const Arc& a) { in_forest[a.orig] = 1; });
}

}  // namespace logcc::core
