#include "core/building_blocks.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/radix.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::core {

std::vector<Arc> arcs_from_edges(const graph::EdgeList& el) {
  return arcs_from_input(graph::ArcsInput::from_edges(el));
}

std::vector<Arc> arcs_from_input(const graph::ArcsInput& in) {
  LOGCC_CHECK_MSG(in.num_edges() <= std::numeric_limits<std::uint32_t>::max(),
                  "edge count exceeds the 32-bit orig-index space");
  if (!in.csr_backed()) {
    const auto edges = in.edge_span();
    const std::uint64_t n = in.num_vertices();
    std::vector<Arc> arcs(edges.size());
    util::parallel_for(0, edges.size(), [&](std::size_t i) {
      const auto& e = edges[i];
      LOGCC_CHECK(e.u < n && e.v < n);
      arcs[i] = {e.u, e.v, static_cast<std::uint32_t>(i)};
    });
    return arcs;
  }
  // CSR-native scatter over the canonical smaller-endpoint suffixes
  // (graph::csr_suffix_begin — the one definition of the order). The
  // blocked emit assigns each vertex a deterministic output offset, and
  // `orig` is that arc's dense index in the canonical edge order — the
  // same indices edge_list_from_csr would have produced, so spanning-
  // forest results refer to the same edges on both paths.
  const graph::CsrView& v = in.csr();
  std::vector<Arc> arcs;
  util::parallel_emit<Arc>(
      static_cast<std::size_t>(v.n), arcs,
      [&](std::size_t u) {
        return graph::csr_suffix(v, static_cast<graph::VertexId>(u)).size();
      },
      [&](std::size_t u, Arc* dst) {
        std::uint32_t orig = static_cast<std::uint32_t>(dst - arcs.data());
        for (graph::VertexId w :
             graph::csr_suffix(v, static_cast<graph::VertexId>(u)))
          *dst++ = {static_cast<graph::VertexId>(u), w, orig++};
      });
  return arcs;
}

void alter(std::vector<Arc>& arcs, const ParentForest& forest) {
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    Arc& a = arcs[i];
    a.u = forest.parent(a.u);
    a.v = forest.parent(a.v);
  });
}

std::uint64_t drop_loops(std::vector<Arc>& arcs) {
  return util::parallel_pack(arcs, [](const Arc& a) { return a.u != a.v; });
}

bool has_nonloop(const std::vector<Arc>& arcs) {
  const std::size_t n = arcs.size();
  if (n < util::kSerialGrain) {
    for (const Arc& a : arcs)
      if (a.u != a.v) return true;
    return false;
  }
  // Blocked OR with early exit: phase loops call this right after
  // drop_loops, so the answer is usually decided by the very first arc —
  // blocks bail as soon as any worker finds a witness.
  const std::size_t blocks = util::scan_block_count(n);
  std::atomic<bool> found{false};
  util::parallel_for_blocks(blocks, [&](std::size_t b) {
    if (found.load(std::memory_order_relaxed)) return;
    const std::size_t hi = util::detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = util::detail::block_begin(n, blocks, b); i < hi;
         ++i) {
      if (arcs[i].u != arcs[i].v) {
        found.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  return found.load();
}

std::vector<VertexId> collect_ongoing(const ParentForest& forest,
                                      const std::vector<Arc>& arcs,
                                      std::vector<std::uint64_t>& first_seen) {
  std::vector<VertexId> out;
  collect_ongoing(forest, arcs, first_seen, out);
  return out;
}

void collect_ongoing(const ParentForest& forest, const std::vector<Arc>& arcs,
                     std::vector<std::uint64_t>& first_seen,
                     std::vector<VertexId>& out) {
  first_seen.resize(forest.size(), kUnseenIndex);
  const std::size_t m2 = arcs.size() * 2;
  auto endpoint = [&](std::size_t j) {
    const Arc& a = arcs[j >> 1];
    return (j & 1) ? a.v : a.u;
  };
  // Fetch-min of the directed occurrence index per endpoint, then a stable
  // segmented pack keeping each vertex at its first occurrence — the output
  // is in first-appearance order, exactly what the serial sweep produced.
  util::parallel_for(0, m2, [&](std::size_t j) {
    const Arc& a = arcs[j >> 1];
    if (a.u == a.v) return;
    util::atomic_min(first_seen[endpoint(j)],
                     static_cast<std::uint64_t>(j));
  });
  util::parallel_emit(
      m2, out,
      [&](std::size_t j) -> std::size_t {
        const Arc& a = arcs[j >> 1];
        return (a.u != a.v && first_seen[endpoint(j)] == j) ? 1 : 0;
      },
      [&](std::size_t j, VertexId* dst) {
        VertexId v = endpoint(j);
        LOGCC_DCHECK(forest.is_root(v));
        (void)forest;
        *dst = v;
      });
  // Restore the scratch to all-kUnseenIndex by clearing only touched
  // entries (every written entry appears in `out` exactly once).
  util::parallel_for(0, out.size(),
                     [&](std::size_t i) { first_seen[out[i]] = kUnseenIndex; });
}

std::uint64_t count_ongoing(const ParentForest& forest,
                            const std::vector<Arc>& arcs,
                            std::vector<std::uint64_t>& first_seen) {
  first_seen.resize(forest.size(), kUnseenIndex);
  const std::size_t m2 = arcs.size() * 2;
  auto endpoint = [&](std::size_t j) {
    const Arc& a = arcs[j >> 1];
    return (j & 1) ? a.v : a.u;
  };
  util::parallel_for(0, m2, [&](std::size_t j) {
    const Arc& a = arcs[j >> 1];
    if (a.u == a.v) return;
    util::atomic_min(first_seen[endpoint(j)],
                     static_cast<std::uint64_t>(j));
  });
  // Count-only: reduce over first occurrences instead of materializing the
  // vertex list, then restore the scratch with idempotent stores.
  const std::uint64_t count = util::parallel_reduce(
      std::size_t{0}, m2, std::uint64_t{0},
      [&](std::size_t j) -> std::uint64_t {
        const Arc& a = arcs[j >> 1];
        return (a.u != a.v && first_seen[endpoint(j)] == j) ? 1 : 0;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  util::parallel_for(0, m2, [&](std::size_t j) {
    const Arc& a = arcs[j >> 1];
    if (a.u == a.v) return;
    util::relaxed_store(first_seen[endpoint(j)], kUnseenIndex);
  });
  return count;
}

namespace {

/// (u, v, orig) order: groups undirected duplicates, min orig first.
bool arc_less(const Arc& a, const Arc& b) {
  if (a.u != b.u) return a.u < b.u;
  if (a.v != b.v) return a.v < b.v;
  return a.orig < b.orig;
}

bool arc_same_pair(const Arc& a, const Arc& b) {
  return a.u == b.u && a.v == b.v;
}

/// Serial dedup path (and the semantics contract for the bucketed path):
/// normalize u <= v, then keep the minimum-orig arc per (u, v) pair.
void dedup_serial(std::vector<Arc>& arcs) {
  std::sort(arcs.begin(), arcs.end(), arc_less);
  arcs.erase(std::unique(arcs.begin(), arcs.end(), arc_same_pair),
             arcs.end());
}

// Arc lists big enough that the bucketed path amortises its two extra
// passes. Chosen by size only — never by thread count — so a given input
// always takes the same path and yields the same output (see scan.hpp on
// the determinism contract).
constexpr std::size_t kDedupBucketCutoff = 4 * util::kSerialGrain;

std::size_t dedup_bucket_count(std::size_t n) {
  std::size_t buckets = 1;
  while (buckets < 256 && buckets * util::kSerialGrain < n) buckets <<= 1;
  return buckets;
}

/// In-bucket sort + unique, in place; returns the surviving count. Large
/// buckets take the radix path: a stable LSD sort on the packed (u, v) key
/// followed by a run scan that keeps the minimum-orig arc per pair —
/// exactly the survivor std::sort(arc_less) + unique kept, so the two
/// paths produce identical contents and the per-bucket size cutoff (a pure
/// function of the input) cannot affect results.
std::size_t dedup_bucket(Arc* a, std::size_t n) {
  if (n < util::kRadixSortCutoff) {
    std::sort(a, a + n, arc_less);
    return static_cast<std::size_t>(std::unique(a, a + n, arc_same_pair) - a);
  }
  util::radix_sort_key64(a, n, [](const Arc& x) {
    return (static_cast<std::uint64_t>(x.u) << 32) | x.v;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < n;) {
    Arc best = a[i];
    std::size_t j = i + 1;
    for (; j < n && arc_same_pair(a[j], best); ++j)
      if (a[j].orig < best.orig) best = a[j];
    a[out++] = best;
    i = j;
  }
  return out;
}

/// Bucket-partitioned dedup: scatter arcs by mix64(u) high bits (all copies
/// of a pair share u after normalization, hence a bucket), radix-sort +
/// unique each bucket independently (dedup_bucket above), then pack the
/// survivors back. Output order is bucket-major — deterministic, but
/// different from the fully sorted serial path, which is why the path
/// choice above keys on size alone. All staging lives in arena scratch
/// (round arena on the dispatcher, lane arenas on workers), so a
/// steady-state round's dedup performs no heap allocation.
void dedup_bucketed(std::vector<Arc>& arcs) {
  const std::size_t n = arcs.size();
  const std::size_t buckets = dedup_bucket_count(n);
  const int shift = 64 - std::countr_zero(buckets);
  util::ScratchBuffer<Arc> scattered(n);
  util::ScratchBuffer<std::size_t> bucket_begin(buckets + 1);
  util::parallel_bucket_partition_into(
      arcs.data(), n, scattered.data(), bucket_begin.span(), buckets,
      [shift](const Arc& a) {
        return static_cast<std::size_t>(util::mix64(a.u) >> shift);
      });

  // Sort + unique each bucket in place; record surviving sizes.
  util::ScratchBuffer<std::size_t> kept(buckets);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    Arc* lo = scattered.data() + bucket_begin[k];
    kept[k] = dedup_bucket(lo, bucket_begin[k + 1] - bucket_begin[k]);
  });

  const std::size_t total = util::parallel_prefix_sum(kept.data(), buckets);
  arcs.resize(total);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    const Arc* src = scattered.data() + bucket_begin[k];
    Arc* dst = arcs.data() + kept[k];
    const std::size_t len = (k + 1 < buckets ? kept[k + 1] : total) - kept[k];
    std::copy(src, src + len, dst);
  });
}

}  // namespace

void dedup_arcs(std::vector<Arc>& arcs) {
  util::parallel_for(0, arcs.size(), [&](std::size_t i) {
    Arc& a = arcs[i];
    if (a.u > a.v) std::swap(a.u, a.v);
  });
  if (arcs.size() < kDedupBucketCutoff) {
    dedup_serial(arcs);
  } else {
    dedup_bucketed(arcs);
  }
}

namespace {

template <typename MarkFn>
std::uint64_t contract_impl(ParentForest& forest, std::vector<Arc>& arcs,
                            RunStats& stats, MarkFn&& mark) {
  // Invariant at the top of every round: trees are flat, arcs connect roots.
  forest.flatten();
  alter(arcs, forest);
  drop_loops(arcs);

  constexpr std::uint32_t kNoArc = static_cast<std::uint32_t>(-1);
  std::vector<std::uint64_t> best;  // (candidate parent << 32) | arc index
  std::uint64_t rounds = 0;
  while (has_nonloop(arcs)) {
    util::scratch_arena_round_reset();
    ++rounds;
    ++stats.phases;
    stats.pram_steps += 3;  // hook, flatten(amortised), alter
    // Every root hooks onto the minimum neighbouring root label (strictly
    // smaller than itself): Boruvka hooking. Local-minima roots survive, so
    // the root count at least halves per component per round. The packed
    // (label, arc) fetch-min keeps the winning arc the lowest-indexed one
    // realising the minimum label — same answer on every thread count.
    const std::uint64_t n = forest.size();
    best.resize(n);
    util::parallel_for(0, n, [&](std::size_t v) {
      best[v] = (static_cast<std::uint64_t>(v) << 32) | kNoArc;
    });
    util::parallel_for(0, arcs.size(), [&](std::size_t i) {
      const Arc& a = arcs[i];
      if (a.u == a.v) return;
      util::atomic_min(best[a.u], (static_cast<std::uint64_t>(a.v) << 32) |
                                      static_cast<std::uint32_t>(i));
      util::atomic_min(best[a.v], (static_cast<std::uint64_t>(a.u) << 32) |
                                      static_cast<std::uint32_t>(i));
    });
    util::parallel_for(0, n, [&](std::size_t v) {
      const VertexId target = static_cast<VertexId>(best[v] >> 32);
      if (target < v && forest.is_root(static_cast<VertexId>(v))) {
        forest.set_parent(static_cast<VertexId>(v), target);
        mark(arcs[static_cast<std::uint32_t>(best[v])]);
      }
    });
    forest.flatten();
    alter(arcs, forest);
    drop_loops(arcs);
    dedup_arcs(arcs);
    LOGCC_CHECK_MSG(rounds <= 4096, "deterministic contract diverged");
  }
  return rounds;
}

}  // namespace

std::uint64_t deterministic_contract(ParentForest& forest,
                                     std::vector<Arc>& arcs, RunStats& stats) {
  return contract_impl(forest, arcs, stats, [](const Arc&) {});
}

std::uint64_t deterministic_contract_sf(ParentForest& forest,
                                        std::vector<Arc>& arcs,
                                        std::vector<std::uint8_t>& in_forest,
                                        RunStats& stats) {
  return contract_impl(forest, arcs, stats,
                       [&](const Arc& a) { in_forest[a.orig] = 1; });
}

}  // namespace logcc::core
